module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Certificate = Rthv_analysis.Certificate
module Bound = Rthv_analysis.Bound
module GS = Rthv_analysis.Guest_sched
module D = Diagnostic

let c_bh_eff ~platform ~c_bh =
  Cycles.( + ) c_bh
    (Cycles.( + )
       (Platform.sched_manip_cost platform)
       (Cycles.( * ) (Platform.ctx_switch_cost platform) 2))

(* The statically known envelope of the admitted stream.  A self-learning
   monitor without a load bound has no static envelope; a bounded one admits
   at most what the bound allows (Algorithm 2 raises every learned entry to
   the bound, so conformance to the adjusted condition implies conformance
   to the bound).  A composite inherits its monitored component's envelope;
   a budget maintains no distance condition. *)
let static_condition = function
  | Config.Fixed_monitor fn -> Some fn
  | Config.Self_learning { bound = Some b; _ } -> Some b
  | Config.Monitor_and_bucket { fn; _ } -> Some fn
  | Config.Self_learning { bound = None; _ }
  | Config.No_shaping | Config.Token_bucket _ | Config.Budgeted _ ->
      None

let shaped source =
  match source.Config.shaping with
  | Config.No_shaping -> false
  | Config.Fixed_monitor _ | Config.Self_learning _ | Config.Token_bucket _
  | Config.Budgeted _ | Config.Monitor_and_bucket _ ->
      true

(* The analysis-side descriptor of a shaping policy: the single point where
   configuration variants map onto [Bound.policy], shared by this linter,
   the trace oracle and the headroom gate. *)
let bound_policy ~cycle = function
  | Config.No_shaping -> Bound.Unshaped
  | Config.Fixed_monitor fn -> Bound.Monitored fn
  | Config.Self_learning { bound = Some b; _ } -> Bound.Monitored b
  | Config.Self_learning { bound = None; _ } -> Bound.Shaped_opaque
  | Config.Token_bucket { capacity; refill } ->
      Bound.Bucketed { capacity; refill }
  | Config.Budgeted { per_cycle } -> Bound.Budgeted { per_cycle; cycle }
  | Config.Monitor_and_bucket { fn; capacity; refill } ->
      Bound.Composite
        [ Bound.Monitored fn; Bound.Bucketed { capacity; refill } ]

(* A condition whose superadditive extension never grows admits an unbounded
   number of events in some finite window: eq. (14) yields no bound. *)
let degenerate fn = DF.delta fn (DF.length fn + 1) = 0

type ctx = {
  config : Config.t;
  cycle : Cycles.t;
  c_ctx : Cycles.t;
  slots : Cycles.t array;
      (* effective per-partition slot lengths — [Config.effective_slots], so
         weighted plans are linted against the schedule actually run *)
}

let source_loc (s : Config.source) = Printf.sprintf "source %s" s.Config.name
let partition_loc (p : Config.partition) =
  Printf.sprintf "partition %s" p.Config.pname

let eff ctx (s : Config.source) =
  c_bh_eff ~platform:ctx.config.Config.platform ~c_bh:s.Config.c_bh

(* RTHV002: a slot that cannot even cover the slot-entry context switch
   provides zero service; the TDMA supply bound (eq. 8) is vacuous. *)
let rule_slot_covers_ctx ctx =
  List.concat
    (List.mapi
       (fun i (p : Config.partition) ->
         if ctx.slots.(i) <= ctx.c_ctx then
           [
             D.error ~code:"RTHV002" ~loc:(partition_loc p)
               ~hint:"grow the slot beyond C_ctx or drop the partition"
               (Format.asprintf
                  "slot %a cannot cover the slot-entry context switch C_ctx = \
                   %a: the partition never executes"
                  Cycles.pp ctx.slots.(i) Cycles.pp ctx.c_ctx);
           ]
         else [])
       ctx.config.Config.partitions)

(* RTHV003: eq. (14) reads I(dt) = eta+_monitor(dt) * C'_BH; a degenerate
   condition has eta+ = infinity for any positive window. *)
let rule_monitor_bounded ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match static_condition s.Config.shaping with
      | Some fn when degenerate fn ->
          Some
            (D.error ~code:"RTHV003" ~loc:(source_loc s)
               ~hint:"use a positive d_min (or load bound) so eq. (14) bounds \
                      the interference"
               "monitoring condition admits unbounded load: every delta^- \
                entry is 0, so the eq.-(14) interference bound does not exist")
      | Some _ | None -> None)
    ctx.config.Config.sources

(* RTHV004: long-term processor share stolen by all grants together.  At
   >= 1.0 the interposed handlers alone overload the core; eq. (2) cannot
   hold for any partition. *)
let rule_interference_utilisation ctx =
  let source_loss (s : Config.source) =
    let monitor_loss fn =
      if degenerate fn then None
      else
        Some (Independence.utilisation_loss ~monitor:fn ~c_bh_eff:(eff ctx s))
    in
    match s.Config.shaping with
    | Config.Token_bucket { refill; _ } ->
        Some (float_of_int (eff ctx s) /. float_of_int refill)
    | Config.Budgeted { per_cycle } ->
        Some
          (float_of_int (per_cycle * eff ctx s) /. float_of_int ctx.cycle)
    | Config.Monitor_and_bucket { fn; refill; _ } ->
        (* The admitted stream satisfies both components: the smaller
           long-term loss governs. *)
        let bucket = float_of_int (eff ctx s) /. float_of_int refill in
        Some
          (match monitor_loss fn with
          | Some m -> Float.min m bucket
          | None -> bucket)
    | shaping -> (
        match static_condition shaping with
        | Some fn -> monitor_loss fn
        | None -> None)
  in
  let loss =
    List.fold_left
      (fun acc s -> acc +. Option.value ~default:0. (source_loss s))
      0. ctx.config.Config.sources
  in
  if loss >= 1. -. 1e-9 then
    [
      D.error ~code:"RTHV004" ~loc:"system"
        ~hint:"enlarge the monitors' distances (Independence.required_d_min \
               sizes a d_min for a target utilisation)"
        (Printf.sprintf
           "granted monitors admit %.0f%% long-term interposition \
            utilisation (eq. 14): the interposed handlers alone overload \
            the processor"
           (100. *. loss));
    ]
  else []

(* RTHV005: the full certification argument — eq. (2) with eq.-(14)
   interference, checked through the busy-window analysis of Guest_sched.
   This is a proof obligation, not a heuristic: the rule fails exactly when
   Certificate.check does. *)
let rule_certificate ctx =
  let grants =
    List.filter_map
      (fun (s : Config.source) ->
        match static_condition s.Config.shaping with
        | Some fn when not (degenerate fn) ->
            Some
              {
                Certificate.source_name = s.Config.name;
                monitor = fn;
                c_bh_eff = eff ctx s;
                subscriber = s.Config.subscriber;
              }
        | Some _ | None -> None)
      ctx.config.Config.sources
  in
  let partitions =
    List.mapi
      (fun i (p : Config.partition) ->
        {
          Certificate.p_index = i;
          p_name = p.Config.pname;
          slot = ctx.slots.(i);
          tasks = List.map GS.of_spec p.Config.tasks;
        })
      ctx.config.Config.partitions
  in
  let cert =
    Certificate.check ~cycle:ctx.cycle ~c_ctx:ctx.c_ctx ~partitions ~grants
  in
  List.filter_map
    (fun (v : Certificate.verdict) ->
      let slot = ctx.slots.(v.Certificate.v_index) in
      if v.Certificate.schedulable || slot <= ctx.c_ctx (* RTHV002's case *)
      then None
      else
        let failing =
          List.filter_map
            (fun ((task : GS.task), result) ->
              match result with
              | Ok r when r.Rthv_analysis.Busy_window.response_time <= task.GS.period
                -> None
              | Ok _ | Error _ -> Some task.GS.name)
            v.Certificate.task_results
        in
        Some
          (D.error ~code:"RTHV005"
             ~loc:(Printf.sprintf "partition %s" v.Certificate.v_name)
             ~hint:"shrink the grants' interference (larger d_min) or \
                    lighten the task set; see Certificate.pp for the numbers"
             (Printf.sprintf
                "task set not schedulable under TDMA service plus the \
                 grants' eq.-(14) interference budget %s (eq. 2 violated): \
                 failing task(s) %s"
                (Format.asprintf "%a" Cycles.pp v.Certificate.interference_budget)
                (String.concat ", " failing))))
    cert.Certificate.verdicts

(* RTHV006: a necessary condition cheaper than the certificate — demand
   above the partition's TDMA share can never converge. *)
let rule_partition_utilisation ctx =
  List.concat
    (List.mapi
       (fun i (p : Config.partition) ->
         if ctx.slots.(i) <= ctx.c_ctx then []
         else
           let share =
             float_of_int (Cycles.( - ) ctx.slots.(i) ctx.c_ctx)
             /. float_of_int ctx.cycle
           in
           let u = Task.utilisation p.Config.tasks in
           if u > share +. 1e-9 then
             [
               D.error ~code:"RTHV006" ~loc:(partition_loc p)
                 ~hint:"the slot share is (T_i - C_ctx) / T_TDMA; lengthen \
                        the slot or lighten the tasks"
                 (Printf.sprintf
                    "task utilisation %.1f%% exceeds the partition's TDMA \
                     share %.1f%%: unschedulable regardless of interference"
                    (100. *. u) (100. *. share));
             ]
           else [])
       ctx.config.Config.partitions)

(* RTHV007: self-learning monitors that can never do useful work. *)
let rule_learning_useful ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Self_learning { learn_events = 0; _ } ->
          Some
            (D.warning ~code:"RTHV007" ~loc:(source_loc s)
               ~hint:"train on a prefix of the trace (the paper uses 10%)"
               "self-learning monitor with learn_events = 0: Algorithm 1 \
                learns nothing, the condition stays degenerate and no \
                activation is ever admitted")
      | Config.Self_learning { learn_events; _ }
        when Array.length s.Config.interarrivals > 0
             && learn_events >= Array.length s.Config.interarrivals ->
          Some
            (D.warning ~code:"RTHV007" ~loc:(source_loc s)
               ~hint:"use learn_events < the number of activations"
               (Printf.sprintf
                  "self-learning monitor never leaves the learning phase: \
                   learn_events = %d but the source only fires %d times"
                  learn_events
                  (Array.length s.Config.interarrivals)))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV008: a grant for a source that never fires is certification noise. *)
let rule_vacuous_grant ctx =
  List.filter_map
    (fun (s : Config.source) ->
      if shaped s && Array.length s.Config.interarrivals = 0 then
        Some
          (D.warning ~code:"RTHV008" ~loc:(source_loc s)
             ~hint:"drop the grant or give the source a workload"
             "shaped source never fires (empty interarrival array): the \
              interposition grant is vacuous")
      else None)
    ctx.config.Config.sources

(* RTHV009: the monitor will do its job, but the integrator should know the
   workload requests more than the condition admits. *)
let rule_workload_within_condition ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Fixed_monitor fn
        when (not (degenerate fn)) && Array.length s.Config.interarrivals > 0
        ->
          let n = Array.length s.Config.interarrivals in
          let total =
            Array.fold_left (fun acc d -> acc +. float_of_int d) 0.
              s.Config.interarrivals
          in
          let request_rate = float_of_int n /. total in
          let admitted_rate = DF.long_term_rate fn in
          if request_rate > admitted_rate *. (1. +. 1e-9) then
            Some
              (D.info ~code:"RTHV009" ~loc:(source_loc s)
                 ~hint:"expected: a fraction of events is denied and handled \
                        delayed; Fig. 6b shows the resulting latency mix"
                 (Printf.sprintf
                    "average request rate (%.1f events/s) exceeds the \
                     monitoring condition's admitted rate (%.1f events/s): \
                     sustained denials expected"
                    (request_rate *. 1e6 *. float_of_int Cycles.cycles_per_us)
                    (admitted_rate *. 1e6 *. float_of_int Cycles.cycles_per_us)))
          else None
      | _ -> None)
    ctx.config.Config.sources

(* RTHV010: Regehr & Duongsaa throttling admits bursts; at equal long-term
   rate its interference bound strictly dominates the d_min bound. *)
let rule_bucket_burst ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Token_bucket { capacity; refill } when capacity > 1 ->
          Some
            (D.warning ~code:"RTHV010" ~loc:(source_loc s)
               ~hint:"a delta^- monitor at the same rate (d_min = refill) \
                      gives the tighter eq.-(14) bound"
               (Printf.sprintf
                  "token bucket with burst capacity %d: any window admits up \
                   to %d + dt/%s interpositions, so partitions must absorb \
                   %d back-to-back C'_BH hits — worse than the equivalent \
                   d_min bound"
                  capacity capacity
                  (Format.asprintf "%a" Cycles.pp refill)
                  capacity))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV011: duplicate names break log and certificate attribution. *)
let rule_unique_partition_names ctx =
  let rec dups seen = function
    | [] -> []
    | (p : Config.partition) :: rest ->
        if List.mem p.Config.pname seen then
          D.warning ~code:"RTHV011" ~loc:(partition_loc p)
            ~hint:"rename so certificates and traces attribute uniquely"
            "duplicate partition name"
          :: dups seen rest
        else dups (p.Config.pname :: seen) rest
  in
  dups [] ctx.config.Config.partitions

(* RTHV012: handler-vs-slot sizing.  A grant whose C'_BH (eq. 13) exceeds
   the subscriber's whole slot makes a single interposition as heavy as a
   slot; a plain bottom handler that cannot finish within one effective slot
   monopolises the boundary-deferral mechanism every time. *)
let rule_handler_fits_slot ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match List.nth_opt ctx.config.Config.partitions s.Config.subscriber with
      | None -> None (* RTHV001 territory *)
      | Some p ->
          let slot = ctx.slots.(s.Config.subscriber) in
          if shaped s && eff ctx s > slot then
            Some
              (D.error ~code:"RTHV012" ~loc:(source_loc s)
                 ~hint:"shrink C_BH or grow the subscriber's slot; eq. (13) \
                        adds C_sched + 2*C_ctx to every interposition"
                 (Format.asprintf
                    "grant's effective cost C'_BH = %a exceeds subscriber \
                     %s's entire slot (%a): one admitted interposition \
                     outweighs a full slot of service"
                    Cycles.pp (eff ctx s) p.Config.pname Cycles.pp slot))
          else if s.Config.c_bh > Cycles.( - ) slot ctx.c_ctx then
            Some
              (D.warning ~code:"RTHV012" ~loc:(source_loc s)
                 ~hint:"the handler spans TDMA cycles (strict mode) or \
                        defers every boundary (finish_bh_at_boundary)"
                 (Format.asprintf
                    "bottom handler (%a) cannot complete within one \
                     effective slot of subscriber %s (%a after C_ctx)"
                    Cycles.pp s.Config.c_bh p.Config.pname Cycles.pp
                    (Cycles.( - ) slot ctx.c_ctx)))
          else None)
    ctx.config.Config.sources

(* RTHV013: a budgeted grant large enough to consume a whole foreign slot.
   The aligned-window bound (Independence.budget_bound) over a window of one
   slot length caps the stolen time; if that cap meets or exceeds the slot,
   a single slot instance can be starved entirely — the per-slot analogue of
   RTHV004's long-term overload. *)
let rule_budget_fits_slots ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Budgeted { per_cycle } ->
          let starved =
            List.concat
              (List.mapi
                 (fun i (p : Config.partition) ->
                   if i = s.Config.subscriber then []
                     (* interpositions steal only from foreign slots *)
                   else
                     let slot = ctx.slots.(i) in
                     if
                       slot > 0
                       && Independence.budget_bound ~per_cycle ~cycle:ctx.cycle
                            ~c_bh_eff:(eff ctx s) slot
                          >= slot
                     then [ p.Config.pname ]
                     else [])
                 ctx.config.Config.partitions)
          in
          if starved = [] then None
          else
            Some
              (D.error ~code:"RTHV013" ~loc:(source_loc s)
                 ~hint:"shrink per_cycle (or C_BH) until the aligned-window \
                        bound stays below every foreign slot"
                 (Printf.sprintf
                    "interposition budget (%d per cycle, C'_BH = %s) can \
                     consume the entire slot of partition(s) %s in the worst \
                     case"
                    per_cycle
                    (Format.asprintf "%a" Cycles.pp (eff ctx s))
                    (String.concat ", " starved)))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV014: how the composite's bucket relates to its monitor — either the
   bucket is provably vacuous (policy degenerates to the monitor alone, the
   eq.-(16) per-instance bound applies) or it can deny conforming
   activations (eq. (16) does not apply; only the interference bound
   tightens). *)
let rule_composite_bucket ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Monitor_and_bucket { fn; capacity; refill }
        when not (degenerate fn) ->
          let bucket = Bound.Bucketed { capacity; refill } in
          if Bound.vacuous_against fn bucket then
            Some
              (D.info ~code:"RTHV014" ~loc:(source_loc s)
                 ~hint:"drop the bucket, or tighten it below delta^-(2) if \
                        burst capping is the intent"
                 (Format.asprintf
                    "composite's bucket (capacity %d, refill %a) is vacuous \
                     against the monitoring condition: a token is always \
                     back before the condition admits again, so the policy \
                     equals the monitor alone and eq. (16) applies"
                    capacity Cycles.pp refill))
          else
            Some
              (D.warning ~code:"RTHV014" ~loc:(source_loc s)
                 ~hint:"conforming activations can be denied by the bucket; \
                        latency verdicts for interposed completions fall \
                        back to the monitored baseline bound"
                 (Format.asprintf
                    "composite's bucket (capacity %d, refill %a) binds \
                     before the monitoring condition: the eq.-(16) \
                     per-instance bound does not apply to this source"
                    capacity Cycles.pp refill))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV015: a budget the workload can never exhaust is dead configuration —
   admission degenerates to always-admit while still paying C_Mon per
   check. *)
let rule_budget_binds ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Budgeted { per_cycle }
        when Array.length s.Config.interarrivals > 0 ->
          (* Earliest possible arrival times are the running distance sums
             (top-handler reprogramming only spreads them further apart);
             the densest aligned cycle window over those times bounds how
             many admissions the workload can ever request per window. *)
          let n = Array.length s.Config.interarrivals in
          let times = Array.make n 0 in
          let acc = ref 0 in
          Array.iteri
            (fun i d ->
              acc := Cycles.( + ) !acc d;
              times.(i) <- !acc)
            s.Config.interarrivals;
          let max_per_window = ref 0 in
          let count = ref 0 in
          let window = ref (-1) in
          Array.iter
            (fun ts ->
              let w = ts / ctx.cycle in
              if w <> !window then begin
                window := w;
                count := 0
              end;
              incr count;
              if !count > !max_per_window then max_per_window := !count)
            times;
          if !max_per_window <= per_cycle then
            Some
              (D.info ~code:"RTHV015" ~loc:(source_loc s)
                 ~hint:"shrink per_cycle until it can bind, or drop the \
                        budget and save the C_Mon checks"
                 (Printf.sprintf
                    "interposition budget never binds: the workload requests \
                     at most %d admissions in any aligned TDMA-cycle window \
                     but the budget allows %d"
                    !max_per_window per_cycle))
          else None
      | _ -> None)
    ctx.config.Config.sources

let rules =
  [
    ("RTHV001", "configuration fails Config.validate");
    ("RTHV002", "partition slot cannot cover the slot-entry context switch");
    ("RTHV003", "monitoring condition admits unbounded load (no eq.-14 bound)");
    ("RTHV004", "granted monitors reach 1.0 long-term interference utilisation");
    ("RTHV005", "task set fails the independence certificate (eq. 2 + eq. 14)");
    ("RTHV006", "task utilisation exceeds the partition's TDMA share");
    ("RTHV007", "self-learning monitor never reaches a useful run phase");
    ("RTHV008", "shaped source never fires (vacuous grant)");
    ("RTHV009", "workload rate exceeds the monitoring condition (denials expected)");
    ("RTHV010", "token-bucket burst allowance dominates the d_min bound");
    ("RTHV011", "duplicate partition names");
    ("RTHV012", "bottom handler / grant does not fit the subscriber's slot");
    ("RTHV013", "interposition budget can starve a whole foreign slot");
    ("RTHV014", "composite bucket vacuous or binding against its monitor");
    ("RTHV015", "interposition budget never binds for the workload");
  ]

let analyze config =
  match Config.validate config with
  | Error msg ->
      [
        D.error ~code:"RTHV001" ~loc:"config"
          ~hint:"remaining rules assume a structurally valid configuration"
          msg;
      ]
  | Ok () ->
      let plan = Config.slot_plan config in
      let ctx =
        {
          config;
          cycle = Rthv_core.Slot_plan.cycle_length plan;
          c_ctx = Platform.ctx_switch_cost config.Config.platform;
          slots = Rthv_core.Slot_plan.slots plan;
        }
      in
      Diagnostic.sort
        (List.concat_map
           (fun rule -> rule ctx)
           [
             rule_slot_covers_ctx;
             rule_monitor_bounded;
             rule_interference_utilisation;
             rule_certificate;
             rule_partition_utilisation;
             rule_learning_useful;
             rule_vacuous_grant;
             rule_workload_within_condition;
             rule_bucket_burst;
             rule_unique_partition_names;
             rule_handler_fits_slot;
             rule_budget_fits_slots;
             rule_composite_bucket;
             rule_budget_binds;
           ])
