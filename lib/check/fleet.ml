module Config = Rthv_core.Config
module Gen = Rthv_workload.Gen
module Par = Rthv_par.Par
module D = Diagnostic

(* --- deterministic fleet generation -------------------------------------- *)

(* Splitmix-style avalanche; the whole fleet derives from (seed, index)
   through this, so generation is reproducible on any host. *)
let mix x =
  let x = x land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

type rng = { mutable state : int }

let rng ~seed i = { state = mix ((seed * 0x9e3779b9) lxor mix i) }

let next r =
  r.state <- mix (r.state + 0x9e3779b9);
  r.state

(* Uniform in [lo, hi], inclusive. *)
let pick r lo hi = lo + (next r mod (hi - lo + 1))

let gen_tasks r =
  List.init (pick r 0 2) (fun k ->
      let period_us = pick r 10 60 * 1_000 in
      Rthv_rtos.Task.spec
        ~name:(Printf.sprintf "t%d" k)
        ~period_us
        ~wcet_us:(pick r 1 (Stdlib.max 1 (period_us / 8_000)) * 500)
        ~priority:(k + 1) ())

let gen_shaping r ~cycle_us =
  match pick r 0 4 with
  | 0 -> Config.No_shaping
  | 1 ->
      let d_min_us = pick r 1 8 * 500 in
      Config.Fixed_monitor
        (Rthv_analysis.Distance_fn.d_min (d_min_us * 200))
  | 2 ->
      Config.Token_bucket
        { capacity = pick r 1 4; refill = pick r 2 20 * 100 * 200 }
  | 3 -> Config.Budgeted { per_cycle = pick r 2 16 }
  | _ ->
      let d_min_us = Stdlib.max 200 (cycle_us / pick r 4 16) in
      Config.Monitor_and_bucket
        {
          fn = Rthv_analysis.Distance_fn.d_min (d_min_us * 200);
          capacity = pick r 1 3;
          refill = pick r 5 30 * 100 * 200;
        }

let gen_workload r =
  let count = pick r 32 128 in
  match pick r 0 2 with
  | 0 -> Gen.constant ~period:(pick r 2 12 * 500 * 200) ~count
  | 1 ->
      Gen.exponential ~seed:(next r land 0xffff) ~mean:(pick r 2 10 * 1_000 * 200)
        ~count
  | _ ->
      Gen.bursty ~seed:(next r land 0xffff) ~burst_len:(pick r 2 5)
        ~inner:(pick r 1 4 * 100 * 200)
        ~gap_mean:(pick r 4 12 * 1_000 * 200)
        ~count

let gen_config ~seed i =
  let r = rng ~seed i in
  let n_parts = pick r 2 4 in
  let slots_us = List.init n_parts (fun _ -> pick r 4 20 * 500) in
  let partitions =
    List.mapi
      (fun k slot_us ->
        Config.partition
          ~name:(Printf.sprintf "p%d" k)
          ~slot_us ~tasks:(gen_tasks r) ())
      slots_us
  in
  let cycle_us = List.fold_left ( + ) 0 slots_us in
  let plan =
    if pick r 0 3 = 0 then
      Config.Weighted_plan
        {
          cycle = cycle_us * 200;
          weights = Array.init n_parts (fun _ -> pick r 1 8);
        }
    else Config.Partition_slots
  in
  let n_sources = pick r 1 3 in
  let sources =
    List.init n_sources (fun line ->
        Config.source
          ~name:(Printf.sprintf "irq%d" line)
          ~line
          ~subscriber:(pick r 0 (n_parts - 1))
          ~c_th_us:(pick r 2 8)
          ~c_bh_us:(pick r 1 15 * 10)
          ~interarrivals:(gen_workload r)
          ~shaping:(gen_shaping r ~cycle_us)
          ())
  in
  let boundary =
    if pick r 0 3 = 0 then Rthv_core.Boundary_policy.Strict_cut
    else Rthv_core.Boundary_policy.Finish_bottom_handler
  in
  Config.make ~plan ~boundary ~partitions ~sources ()

let gen_batch ~seed ~count =
  List.init count (fun i ->
      (Printf.sprintf "cfg-%04d" i, gen_config ~seed i))

(* --- directory IO -------------------------------------------------------- *)

let write_batch ~dir configs =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (name, config) ->
        match Config_codec.to_string config with
        | Error e -> failwith (Printf.sprintf "%s: %s" name e)
        | Ok s ->
            let oc = open_out (Filename.concat dir (name ^ ".json")) in
            output_string oc s;
            output_char oc '\n';
            close_out oc)
      configs;
    Ok (List.length configs)
  with
  | Failure e -> Error e
  | Sys_error e -> Error e

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
      let files =
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort String.compare
      in
      List.fold_left
        (fun acc file ->
          Result.bind acc (fun acc ->
              let path = Filename.concat dir file in
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              match Config_codec.of_string s with
              | Ok config -> Ok ((Filename.chop_suffix file ".json", config) :: acc)
              | Error e -> Error (Printf.sprintf "%s: %s" file e)))
        (Ok []) files
      |> Result.map List.rev

(* --- batch runs ---------------------------------------------------------- *)

let lint_batch ?pool configs =
  Par.map ?pool
    (fun (name, config) -> (name, Lint.analyze config))
    configs

let certify_batch ?pool configs =
  Par.map ?pool
    (fun (name, config) -> (name, Certify.build_string ~scenario:name config))
    configs

let report results =
  let buf = Buffer.create 4096 in
  let te = ref 0 and tw = ref 0 and ti = ref 0 in
  List.iter
    (fun (name, diags) ->
      let e = D.count D.Error diags
      and w = D.count D.Warning diags
      and i = D.count D.Info diags in
      te := !te + e;
      tw := !tw + w;
      ti := !ti + i;
      Buffer.add_string buf
        (Printf.sprintf "%s: %d error(s), %d warning(s), %d info\n" name e w i);
      List.iter
        (fun entry ->
          Buffer.add_string buf
            (Format.asprintf "  %a@." D.pp_counted entry))
        (D.dedupe diags))
    results;
  Buffer.add_string buf
    (Printf.sprintf "batch: %d config(s), %d error(s), %d warning(s), %d info\n"
       (List.length results) !te !tw !ti);
  Buffer.contents buf
