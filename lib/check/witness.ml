module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Independence = Rthv_analysis.Independence
module Bound = Rthv_analysis.Bound
module Gen = Rthv_workload.Gen
module TO = Trace_oracle
module D = Diagnostic

type claim =
  | Interference_claim of {
      ic_carrier : int;
      ic_windows : (Cycles.t * Cycles.t) list;
    }
  | Service_claim of { sv_partition : int; sv_min_total : Cycles.t }

type t = {
  w_code : string;
  w_loc : string;
  w_predicted : string;
  w_claim : claim;
  w_config : Config.t;
  w_arrivals : (int * Cycles.t array) list;
  w_baseline : D.t list;
  w_oracle : D.t list;
  w_measured : TO.measurement;
  w_confirmed : bool;
  w_digest : string;
}

(* Which oracle rule confirms which refutation: interference-side
   refutations (a claimed eq.-(14)-style curve does not hold) are caught by
   the windowed charge audit, service-side refutations (a claimed supply
   bound does not hold) by the net-service audit. *)
let channels =
  [
    ("RTHV002", "RTHV109");
    ("RTHV003", "RTHV104");
    ("RTHV004", "RTHV104");
    ("RTHV005", "RTHV109");
    ("RTHV006", "RTHV109");
    ("RTHV012", "RTHV104");
    ("RTHV013", "RTHV104");
    ("RTHV017", "RTHV109");
    ("RTHV018", "RTHV104");
    ("RTHV020", "RTHV109");
  ]

let cycle_of config =
  Rthv_core.Slot_plan.cycle_length (Config.slot_plan config)

let c_ctx_of config = Platform.ctx_switch_cost config.Config.platform

let strip_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let source_of_loc config loc =
  match strip_prefix ~prefix:"source " loc with
  | Some name ->
      List.find_opt
        (fun (s : Config.source) -> s.Config.name = name)
        config.Config.sources
  | None -> None

let partition_of_loc config loc =
  match strip_prefix ~prefix:"partition " loc with
  | Some name ->
      let rec find i = function
        | [] -> None
        | (p : Config.partition) :: _ when p.Config.pname = name -> Some i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 config.Config.partitions
  | None -> None

(* --- burst synthesis ----------------------------------------------------- *)

(* The densest arrival stream the source's admission policy admits in full:
   δ⁻-conforming for monitored sources (Gen.adversarial), the greedy
   earliest admitted schedule for the rate-based policies.  [None] when the
   policy never interposes or its admissions cannot be predicted.  [start]
   delays the first arrival — an interference witness must arrive in a
   {e foreign} slot to interpose at all, so it skips the subscriber's own
   leading slot. *)
let burst config (s : Config.source) ~start ~horizon =
  let platform = config.Config.platform in
  let cycle = cycle_of config in
  let policy = Absint.bound_policy ~cycle s.Config.shaping in
  let eff = Absint.c_bh_eff ~platform ~c_bh:s.Config.c_bh in
  let fp = Absint.footprint ~platform ~c_th:s.Config.c_th ~c_bh_eff:eff in
  let shift arr =
    if Array.length arr = 0 then None
    else begin
      (* Distance-based policies are time-invariant and the budget's
         aligned-window count only splits across more windows, so a shifted
         stream is still admitted in full. *)
      arr.(0) <- Cycles.( + ) arr.(0) start;
      Some arr
    end
  in
  match policy with
  | Bound.Monitored fn ->
      let count = Stdlib.min 2048 ((horizon / fp) + 2) in
      shift (Gen.adversarial ~fn ~min_gap:fp ~count ())
  | policy -> (
      match Absint.adversarial_schedule ~policy ~footprint:fp ~horizon with
      | [] -> None
      | t0 :: rest ->
          let ds, _ =
            List.fold_left
              (fun (acc, prev) t -> (Cycles.( - ) t prev :: acc, t))
              ([ t0 ], t0) rest
          in
          shift (Array.of_list (List.rev ds)))

let with_arrivals config overrides ~empty_others =
  {
    config with
    Config.sources =
      List.map
        (fun (s : Config.source) ->
          match List.assoc_opt s.Config.line overrides with
          | Some arr -> { s with Config.interarrivals = arr }
          | None ->
              if empty_others then { s with Config.interarrivals = [||] }
              else s)
        config.Config.sources;
  }

(* A witness run must terminate even when the refuted configuration never
   drains its IRQ backlog (that divergence is often the point): cap the
   simulation shortly after the synthesized bursts end.  A trace cut
   mid-window is legitimate oracle input. *)
let run_trace config ~horizon =
  let trace = Hyp_trace.create ~capacity:Hyp_sim.audit_trace_capacity () in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run ~horizon:(Cycles.( + ) horizon (Cycles.( * ) (cycle_of config) 2)) sim;
  trace

let digest_of arrivals =
  let buf = Buffer.create 256 in
  List.iter
    (fun (line, arr) ->
      Buffer.add_string buf (string_of_int line);
      Buffer.add_char buf ':';
      Array.iter
        (fun d ->
          Buffer.add_string buf (string_of_int d);
          Buffer.add_char buf ',')
        arr;
      Buffer.add_char buf ';')
    arrivals;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let has_error diags =
  List.exists (fun (d : D.t) -> d.D.severity = D.Error) diags

let fires code diags = List.exists (fun (d : D.t) -> d.D.code = code) diags

(* --- claim specifications ------------------------------------------------ *)

(* The weakest certification-relevant interference claim: in every audit
   window some service beyond the slot-entry switch survives.  Refuting it
   shows no eq.-(2) independence budget can hold.  The carrier's C'_BH is
   zeroed so the oracle adds no carry-in slack on top of the claim. *)
let slot_claim_spec ~c_ctx (spec : TO.spec) carrier =
  let curve dt = Cycles.max Cycles.zero (Cycles.( - ) dt c_ctx) in
  {
    spec with
    TO.sources =
      List.map
        (fun (ss : TO.source_spec) ->
          if ss.TO.ss_line = carrier then
            {
              ss with
              TO.ss_shaped = true;
              ss_condition = None;
              ss_bound = Some curve;
              ss_c_bh_eff = Cycles.zero;
            }
          else { ss with TO.ss_shaped = false; ss_bound = None })
        spec.TO.sources;
  }

(* The grant-only certificate's claim (RTHV018): only δ⁻-granted sources
   carry interference curves; the bucket/budget admissions the closed form
   ignores must then exceed the summed grant budget on the trace. *)
let grant_claim_spec config (spec : TO.spec) =
  let platform = config.Config.platform in
  {
    spec with
    TO.sources =
      List.map2
        (fun (s : Config.source) (ss : TO.source_spec) ->
          match Absint.static_condition s.Config.shaping with
          | Some fn when not (Absint.degenerate fn) ->
              let eff = Absint.c_bh_eff ~platform ~c_bh:s.Config.c_bh in
              {
                ss with
                TO.ss_shaped = true;
                ss_condition = None;
                ss_bound =
                  Some (Independence.interposed_bound ~monitor:fn ~c_bh_eff:eff);
              }
          | Some _ | None -> { ss with TO.ss_shaped = false; ss_bound = None })
        config.Config.sources spec.TO.sources;
  }

let spec_bound (spec : TO.spec) dt =
  let carry =
    List.fold_left
      (fun acc (ss : TO.source_spec) ->
        if ss.TO.ss_shaped then Cycles.max acc ss.TO.ss_c_bh_eff else acc)
      Cycles.zero spec.TO.sources
  in
  List.fold_left
    (fun acc (ss : TO.source_spec) ->
      match ss.TO.ss_bound with
      | Some curve -> Cycles.( + ) acc (curve dt)
      | None -> acc)
    carry spec.TO.sources

let claim_windows (spec : TO.spec) =
  let windows =
    List.sort_uniq Cycles.compare (spec.TO.cycle :: spec.TO.slots)
  in
  List.map (fun dt -> (dt, spec_bound spec dt)) windows

(* --- the interference channel -------------------------------------------- *)

let interference_targets config ai (diag : D.t) =
  match diag.D.code with
  | "RTHV003" | "RTHV012" | "RTHV013" -> (
      match source_of_loc config diag.D.loc with
      | Some s -> Some [ s ]
      | None -> None)
  | "RTHV004" | "RTHV018" ->
      (* Every source that can interpose contributes to the overload /
         blind spot; burst them all. *)
      let active =
        List.filter_map
          (fun ((s : Config.source), (f : Absint.source_fact)) ->
            if f.Absint.sf_active then Some s else None)
          (List.combine config.Config.sources ai.Absint.sources)
      in
      if active = [] then None else Some active
  | _ -> None

let interference_witness config ai (diag : D.t) =
  let horizon = Cycles.( * ) (cycle_of config) 6 in
  let c_ctx = c_ctx_of config in
  match interference_targets config ai diag with
  | None -> None
  | Some targets -> (
      let slots = Config.effective_slots config in
      let bursts =
        List.filter_map
          (fun (s : Config.source) ->
            (* Skip the subscriber's own leading slot: arrivals there are
               handled direct and interpose nothing. *)
            let start =
              if s.Config.subscriber = 0 && Array.length slots > 0 then
                slots.(0)
              else Cycles.zero
            in
            match burst config s ~start ~horizon with
            | Some arr -> Some (s.Config.line, arr)
            | None -> None)
          targets
      in
      match bursts with
      | [] -> None
      | (carrier, _) :: _ ->
          let wconfig = with_arrivals config bursts ~empty_others:true in
          let trace = run_trace wconfig ~horizon in
          let spec = TO.of_config wconfig in
          let claim_spec =
            match diag.D.code with
            | "RTHV018" -> grant_claim_spec wconfig spec
            | _ -> slot_claim_spec ~c_ctx spec carrier
          in
          let baseline = TO.audit spec trace in
          let oracle = TO.audit claim_spec trace in
          let measured = TO.measure spec (Hyp_trace.to_list trace) in
          Some
            {
              w_code = diag.D.code;
              w_loc = diag.D.loc;
              w_predicted = "RTHV104";
              w_claim =
                Interference_claim
                  { ic_carrier = carrier; ic_windows = claim_windows claim_spec };
              w_config = wconfig;
              w_arrivals = List.sort compare bursts;
              w_baseline = baseline;
              w_oracle = oracle;
              w_measured = measured;
              w_confirmed =
                (not (has_error baseline)) && fires "RTHV104" oracle;
              w_digest = digest_of (List.sort compare bursts);
            })

(* --- the service channel ------------------------------------------------- *)

(* The net-service minimum the refuted guarantee implies over [horizon]. *)
let service_claim config ai ~horizon (diag : D.t) =
  let cycle = cycle_of config in
  let c_ctx = c_ctx_of config in
  let demand_claim util p =
    let total = ceil (util *. float_of_int horizon) in
    Some { TO.sc_partition = p; sc_min_total = int_of_float total }
  in
  match diag.D.code with
  | "RTHV002" -> (
      match partition_of_loc config diag.D.loc with
      | Some p -> Some { TO.sc_partition = p; sc_min_total = 1 }
      | None -> None)
  | "RTHV005" | "RTHV006" -> (
      match partition_of_loc config diag.D.loc with
      | Some p -> (
          match List.nth_opt ai.Absint.partitions p with
          | Some pf -> demand_claim pf.Absint.pf_task_util p
          | None -> None)
      | None -> None)
  | "RTHV020" -> (
      match partition_of_loc config diag.D.loc with
      | Some p -> (
          match List.nth_opt ai.Absint.partitions p with
          | Some pf -> demand_claim pf.Absint.pf_demand p
          | None -> None)
      | None -> None)
  | "RTHV017" -> (
      match source_of_loc config diag.D.loc with
      | Some s -> (
          match List.nth_opt config.Config.partitions s.Config.subscriber with
          | Some p ->
              (* The declared slot's supply, per completed cycle — what the
                 plan would still deliver if the slot fields were honoured. *)
              let per_cycle = Cycles.( - ) p.Config.slot c_ctx in
              let cycles = horizon / cycle in
              Some
                {
                  TO.sc_partition = s.Config.subscriber;
                  sc_min_total = Cycles.( * ) per_cycle cycles;
                }
          | None -> None)
      | None -> None)
  | _ -> None

let service_witness config ai (diag : D.t) =
  let horizon = Cycles.( * ) (cycle_of config) 6 in
  let bursts =
    List.filter_map
      (fun (s : Config.source) ->
        if Absint.shaped s then
          match burst config s ~start:Cycles.zero ~horizon with
          | Some arr -> Some (s.Config.line, arr)
          | None -> None
        else None)
      config.Config.sources
  in
  let wconfig = with_arrivals config bursts ~empty_others:false in
  let trace = run_trace wconfig ~horizon in
  let spec = TO.of_config wconfig in
  let baseline = TO.audit spec trace in
  let measured = TO.measure spec (Hyp_trace.to_list trace) in
  match service_claim wconfig ai ~horizon:measured.TO.m_horizon diag with
  | None -> None
  | Some claim ->
      let claim_spec = { spec with TO.claims = [ claim ] } in
      let oracle = TO.audit claim_spec trace in
      Some
        {
          w_code = diag.D.code;
          w_loc = diag.D.loc;
          w_predicted = "RTHV109";
          w_claim =
            Service_claim
              {
                sv_partition = claim.TO.sc_partition;
                sv_min_total = claim.TO.sc_min_total;
              };
          w_config = wconfig;
          w_arrivals = List.sort compare bursts;
          w_baseline = baseline;
          w_oracle = oracle;
          w_measured = measured;
          w_confirmed = (not (has_error baseline)) && fires "RTHV109" oracle;
          w_digest = digest_of (List.sort compare bursts);
        }

let synthesize config (diag : D.t) =
  if diag.D.severity <> D.Error then None
  else
    match (Config.validate config, List.assoc_opt diag.D.code channels) with
    | Error _, _ | _, None -> None
    | Ok (), Some predicted ->
        let ai = Absint.analyze config in
        if predicted = "RTHV104" then interference_witness config ai diag
        else service_witness config ai diag

let all config =
  List.filter_map
    (fun (diag : D.t) ->
      match synthesize config diag with
      | Some w -> Some (diag, w)
      | None -> None)
    (Lint.analyze config)

(* The static rules refute against *proved* (eq.-(14)-style upper-bound)
   interference; a refutation can therefore hold under the proved bounds yet
   not be realizable by any concrete arrival pattern — e.g. summed per-source
   worst cases that global interposition serialization cannot deliver
   jointly, or a transient busy-window excursion that aggregate net supply
   cannot expose.  Certification resolves this by replay: an Error whose
   adversarial witness does not confirm is demoted to a Warning, so every
   Error in certified output carries a confirmed counterexample by
   construction.  Structural errors with no simulation channel (RTHV001,
   RTHV011) are their own proof and are exempt. *)
let demote (diag : D.t) =
  {
    diag with
    D.severity = D.Warning;
    message =
      diag.D.message
      ^ " [demoted: refuted under proved bounds only — the adversarial \
         replay could not realize this violation]";
  }

let certified config =
  let diags = Lint.analyze config in
  let witnesses = ref [] in
  let graded =
    List.map
      (fun (diag : D.t) ->
        if
          diag.D.severity <> D.Error
          || not (List.mem_assoc diag.D.code channels)
        then diag
        else
          match synthesize config diag with
          | Some w when w.w_confirmed ->
              witnesses := (diag, w) :: !witnesses;
              diag
          | Some _ | None -> demote diag)
      diags
  in
  (graded, List.rev !witnesses)

let digest_of_arrivals = digest_of
