module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Hyp_trace = Rthv_core.Hyp_trace
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Bound = Rthv_analysis.Bound
module D = Diagnostic

type source_spec = {
  ss_line : int;
  ss_name : string;
  ss_subscriber : int;
  ss_c_th : Cycles.t;
  ss_budget : Cycles.t;
  ss_c_bh_eff : Cycles.t;
  ss_shaped : bool;
  ss_condition : DF.t option;
  ss_bound : Independence.interference_curve option;
}

type service_claim = { sc_partition : int; sc_min_total : Cycles.t }

type spec = {
  partitions : int;
  slots : Cycles.t list;
  cycle : Cycles.t;
  c_mon : Cycles.t;
  c_sched : Cycles.t;
  c_ctx : Cycles.t;
  sources : source_spec list;
  claims : service_claim list;
}

let of_config (config : Config.t) =
  let platform = config.Config.platform in
  let plan = Config.slot_plan config in
  let cycle = Rthv_core.Slot_plan.cycle_length plan in
  let sources =
    List.map
      (fun (s : Config.source) ->
        let policy = Lint.bound_policy ~cycle s.Config.shaping in
        let condition =
          match Bound.condition policy with
          | Some fn when Bound.degenerate fn -> None
          | c -> c
        in
        let c_bh_eff = Lint.c_bh_eff ~platform ~c_bh:s.Config.c_bh in
        {
          ss_line = s.Config.line;
          ss_name = s.Config.name;
          ss_subscriber = s.Config.subscriber;
          ss_c_th = s.Config.c_th;
          ss_budget = s.Config.c_bh;
          ss_c_bh_eff = c_bh_eff;
          ss_shaped = Bound.shaped policy;
          ss_condition = condition;
          ss_bound = Bound.interference policy ~c_bh_eff;
        })
      config.Config.sources
  in
  {
    partitions = List.length config.Config.partitions;
    slots = Array.to_list (Rthv_core.Slot_plan.slots plan);
    cycle;
    c_mon = Platform.monitor_cost platform;
    c_sched = Platform.sched_manip_cost platform;
    c_ctx = Platform.ctx_switch_cost platform;
    sources;
    claims = [];
  }

(* --- replay state ------------------------------------------------------- *)

type active = {
  a_irq : int;
  a_source : source_spec option;
  a_target : int;
  a_start : Cycles.t;
  mutable a_allowance : Cycles.t;
      (* Hypervisor work that preempted the interposition window: it elapses
         wall-clock time inside [start, end] without consuming budget. *)
}

type state = {
  spec : spec;
  mutable diags : D.t list;
  mutable last_time : Cycles.t;
  mutable owner : int;
  irq_line : (int, int) Hashtbl.t;
  admitted_arrival : (int, Cycles.t) Hashtbl.t;
  history : (int, Cycles.t list) Hashtbl.t;
      (* line -> last l admitted arrivals, newest first. *)
  mutable pending : (int * int ref) option;
      (* Admitted irq whose interposition has not started yet, with the
         number of slot switches seen since the decision: their C_ctx
         hypervisor items are queued behind the admission's ctx switch and
         drain inside the upcoming window. *)
  mutable active : active option;
  mutable completed : (Cycles.t * Cycles.t * int option) list;
      (* (charge time, cost, source line) *)
  service : Cycles.t array;
      (* Per-partition net service: owned span length minus the slot-entry
         switch and the hypervisor/bottom-half work that ran inside it. *)
  mutable span_start : Cycles.t;
  mutable span_stolen : Cycles.t;  (* steals inside the current span *)
  admitted_count : (int, int ref) Hashtbl.t;  (* line -> admissions *)
  raised : (int, unit) Hashtbl.t;  (* irq ids seen in Irq_raised *)
  bh_done : (int, unit) Hashtbl.t;  (* irq ids whose bottom handler completed *)
  mutable raise_seen : bool;
      (* Traces produced before the Irq_raised event existed (and synthetic
         fixtures) have completions with no raise; the RTHV108 orphan check
         only arms once the trace demonstrably records raises. *)
}

let source_by_line st line =
  List.find_opt (fun ss -> ss.ss_line = line) st.spec.sources

let report st d = st.diags <- d :: st.diags

let structural st ~loc message =
  report st (D.error ~code:"RTHV106" ~loc message)

(* RTHV102: an admitted activation must keep the configured distances to the
   previously admitted activations of its line (the monitor's own rule —
   eq. (14) is sound only because the admitted stream conforms). *)
let check_admission st ~loc ss arrival =
  match ss.ss_condition with
  | None -> ()
  | Some fn ->
      let hist =
        Option.value ~default:[] (Hashtbl.find_opt st.history ss.ss_line)
      in
      List.iteri
        (fun i prev ->
          let q = i + 2 in
          let need = DF.delta fn q in
          if Cycles.( - ) arrival prev < need then
            report st
              (D.error ~code:"RTHV102" ~loc
                 ~hint:"the monitor must deny activations closer than \
                        delta^- to the admitted history"
                 (Format.asprintf
                    "source %s: admitted activation at %a is only %a after \
                     the admitted activation %d position(s) back — the \
                     condition requires delta^-(%d) = %a"
                    ss.ss_name Cycles.pp arrival Cycles.pp
                    (Cycles.( - ) arrival prev)
                    (i + 1) q Cycles.pp need)))
        hist;
      let l = DF.length fn in
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      Hashtbl.replace st.history ss.ss_line (take l (arrival :: hist))

(* Close the current ownership span at [time] and credit the owner with its
   net service: span length minus the slot-entry switch and the steals that
   accumulated inside it (never below zero). *)
let close_span st time =
  if st.owner >= 0 && st.owner < Array.length st.service then begin
    let span = Cycles.( - ) time st.span_start in
    let net =
      Cycles.max 0
        (Cycles.( - ) (Cycles.( - ) span st.spec.c_ctx) st.span_stolen)
    in
    st.service.(st.owner) <- Cycles.( + ) st.service.(st.owner) net
  end;
  st.span_start <- time;
  st.span_stolen <- Cycles.zero

let steal st cost = st.span_stolen <- Cycles.( + ) st.span_stolen cost

let finish_interposition st ~loc ~time a =
  let execution = Cycles.( - ) (Cycles.( - ) time a.a_start) a.a_allowance in
  (match a.a_source with
  | Some ss when execution > ss.ss_budget ->
      report st
        (D.error ~code:"RTHV103" ~loc
           ~hint:"the hypervisor must cut the interposition the moment the \
                  budget is exhausted (Figure 4b)"
           (Format.asprintf
              "source %s: interposition executed %a but the granted budget \
               C_BH is %a (window %a..%a minus %a of preempting hypervisor \
               work)"
              ss.ss_name Cycles.pp execution Cycles.pp ss.ss_budget Cycles.pp
              a.a_start Cycles.pp time Cycles.pp a.a_allowance))
  | Some _ | None -> ());
  let charge_time =
    match Hashtbl.find_opt st.admitted_arrival a.a_irq with
    | Some arrival -> arrival
    | None -> a.a_start
  in
  let cost =
    Cycles.( + )
      (Cycles.( + ) st.spec.c_sched (Cycles.( * ) st.spec.c_ctx 2))
      (Cycles.max execution 0)
  in
  let line = Hashtbl.find_opt st.irq_line a.a_irq in
  st.completed <- (charge_time, cost, line) :: st.completed;
  (* The window plus its bracketing hypervisor work ran inside the slot that
     owns [time]: that slot's tasks lose the whole charge. *)
  steal st cost;
  st.active <- None

let entry_loc index (e : Hyp_trace.entry) =
  Format.asprintf "trace[%d] t=%a" index Cycles.pp e.Hyp_trace.time

let step st index (e : Hyp_trace.entry) =
  let loc = entry_loc index e in
  let time = e.Hyp_trace.time in
  if time < st.last_time then
    report st
      (D.error ~code:"RTHV101" ~loc
         (Format.asprintf
            "trace timestamps go backwards: %a after %a" Cycles.pp time
            Cycles.pp st.last_time));
  st.last_time <- Cycles.max st.last_time time;
  let bump_allowance cost =
    match st.active with
    | Some a -> a.a_allowance <- Cycles.( + ) a.a_allowance cost
    | None -> ()
  in
  match e.Hyp_trace.event with
  | Hyp_trace.Boundary_deferred _ -> ()
  | Hyp_trace.Irq_raised { irq; line } ->
      st.raise_seen <- true;
      if source_by_line st line = None then
        structural st ~loc
          (Printf.sprintf "irq %d raised on unconfigured line %d" irq line);
      if Hashtbl.mem st.raised irq then
        report st
          (D.error ~code:"RTHV108" ~loc
             ~hint:"each IRQ instance id must be raised exactly once; a \
                    duplicate raise breaks the causal span accounting"
             (Printf.sprintf "irq %d raised twice" irq))
      else Hashtbl.replace st.raised irq ()
  | Hyp_trace.Bottom_handler_start { irq = _; partition = _ } ->
      (* A zero-cost marker bracketing the bottom-half slice of the span:
         no allowance bump, no slot check (RTHV105 judges the completion). *)
      ()
  | Hyp_trace.Irq_coalesced { line } ->
      if source_by_line st line = None then
        structural st ~loc
          (Printf.sprintf "coalesced raise on unconfigured line %d" line)
  | Hyp_trace.Slot_switch { from_partition; to_partition } ->
      if from_partition <> st.owner then
        structural st ~loc
          (Printf.sprintf
             "slot switch from partition %d, but partition %d owned the slot"
             from_partition st.owner);
      close_span st time;
      st.owner <- to_partition;
      (match st.pending with Some (_, n) -> incr n | None -> ())
  | Hyp_trace.Top_handler_run { irq; line } -> (
      Hashtbl.replace st.irq_line irq line;
      match source_by_line st line with
      | Some ss ->
          bump_allowance ss.ss_c_th;
          steal st ss.ss_c_th
      | None ->
          structural st ~loc
            (Printf.sprintf "top handler on unconfigured line %d" line))
  | Hyp_trace.Monitor_decision { irq; line; arrival; verdict } -> (
      Hashtbl.replace st.irq_line irq line;
      bump_allowance st.spec.c_mon;
      steal st st.spec.c_mon;
      match verdict with
      | `Denied | `Fallback_direct -> ()
      | `Admitted -> (
          Hashtbl.replace st.admitted_arrival irq arrival;
          (match Hashtbl.find_opt st.admitted_count line with
          | Some n -> incr n
          | None -> Hashtbl.replace st.admitted_count line (ref 1));
          (match st.pending with
          | Some (previous, _) ->
              structural st ~loc
                (Printf.sprintf
                   "activation admitted while irq %d's admitted \
                    interposition has not started yet"
                   previous)
          | None -> ());
          st.pending <- Some (irq, ref 0);
          match source_by_line st line with
          | Some ss -> check_admission st ~loc ss arrival
          | None ->
              structural st ~loc
                (Printf.sprintf "monitor decision on unconfigured line %d" line)))
  | Hyp_trace.Interposition_start { irq; target } ->
      (match st.active with
      | Some a ->
          structural st ~loc
            (Printf.sprintf
               "interposition for irq %d starts while irq %d's is still \
                active"
               irq a.a_irq);
          (* Judge the abandoned window at the point it was superseded. *)
          finish_interposition st ~loc ~time a
      | None -> ());
      let allowance =
        match st.pending with
        | Some (p_irq, crossings) when p_irq = irq ->
            st.pending <- None;
            Cycles.( * ) st.spec.c_ctx !crossings
        | Some _ | None ->
            structural st ~loc
              (Printf.sprintf
                 "interposition for irq %d starts without a matching \
                  admitted monitor decision"
                 irq);
            Cycles.zero
      in
      let source =
        match Hashtbl.find_opt st.irq_line irq with
        | None ->
            structural st ~loc
              (Printf.sprintf "interposition for unknown irq %d" irq);
            None
        | Some line -> (
            match source_by_line st line with
            | None ->
                structural st ~loc
                  (Printf.sprintf "interposition on unconfigured line %d" line);
                None
            | Some ss ->
                if ss.ss_subscriber <> target then
                  structural st ~loc
                    (Printf.sprintf
                       "interposition targets partition %d but line %d's \
                        subscriber is partition %d"
                       target ss.ss_line ss.ss_subscriber);
                Some ss)
      in
      st.active <-
        Some
          {
            a_irq = irq;
            a_source = source;
            a_target = target;
            a_start = time;
            a_allowance = allowance;
          }
  | Hyp_trace.Interposition_crossed_boundary { target } -> (
      match st.active with
      | Some a when a.a_target = target -> a.a_allowance <- Cycles.( + ) a.a_allowance st.spec.c_ctx
      | Some a ->
          structural st ~loc
            (Printf.sprintf
               "boundary crossing reported for partition %d but the active \
                interposition targets partition %d"
               target a.a_target)
      | None ->
          structural st ~loc
            "boundary crossing reported with no interposition in flight")
  | Hyp_trace.Interposition_end { target; reason = _ } -> (
      match st.active with
      | None ->
          structural st ~loc "interposition end with no interposition in flight"
      | Some a ->
          if a.a_target <> target then
            structural st ~loc
              (Printf.sprintf
                 "interposition end for partition %d but the active \
                  interposition targets partition %d"
                 target a.a_target);
          finish_interposition st ~loc ~time a)
  | Hyp_trace.Bottom_handler_done { irq; partition } -> (
      (* RTHV108: every completion must match exactly one raise — no orphan
         completions (if the trace records raises at all) and no duplicate
         completions of the same instance. *)
      if Hashtbl.mem st.bh_done irq then
        report st
          (D.error ~code:"RTHV108" ~loc
             ~hint:"a bottom handler completes its IRQ instance exactly once"
             (Printf.sprintf "irq %d's bottom handler completed twice" irq))
      else begin
        Hashtbl.replace st.bh_done irq ();
        if st.raise_seen && not (Hashtbl.mem st.raised irq) then
          report st
            (D.error ~code:"RTHV108" ~loc
               ~hint:"every bottom-handler completion must trace back to an \
                      Irq_raised event for the same instance id"
               (Printf.sprintf
                  "irq %d's bottom handler completed but the trace has no \
                   matching raise"
                  irq))
      end;
      (* An own-slot completion executed its C_BH inside the owner's span
         (interposed completions are charged at Interposition_end). *)
      (match st.active with
      | None when partition = st.owner -> (
          match Hashtbl.find_opt st.irq_line irq with
          | Some line -> (
              match source_by_line st line with
              | Some ss -> steal st ss.ss_budget
              | None -> ())
          | None -> ())
      | None | Some _ -> ());
      if partition <> st.owner then
        match st.active with
        | Some a when a.a_target = partition -> ()
        | Some _ | None ->
            report st
              (D.error ~code:"RTHV105" ~loc
                 ~hint:"outside its own slot a bottom handler may only run \
                        inside an admitted interposition (Section 5)"
                 (Printf.sprintf
                    "bottom handler of partition %d completed during \
                     partition %d's slot with no admitted interposition \
                     targeting it"
                    partition st.owner)))

(* RTHV104: replay-side equation (14).  Each completed interposition is
   charged C_sched + 2*C_ctx + execution at the arrival of the activation it
   was admitted for; in every window anchored at a charge and sized by a
   partition slot or the full cycle, the charges must stay within the summed
   static interference curves (plus one carry-in C'_BH). *)
let check_interference st =
  let unbounded =
    List.exists (fun ss -> ss.ss_shaped && ss.ss_bound = None) st.spec.sources
  in
  let charges =
    List.sort
      (fun (a, _) (b, _) -> Cycles.compare a b)
      (List.rev_map (fun (t, cost, _line) -> (t, cost)) st.completed)
  in
  if unbounded || charges = [] then ()
  else begin
    let carry =
      List.fold_left
        (fun acc ss -> if ss.ss_shaped then Cycles.max acc ss.ss_c_bh_eff else acc)
        0 st.spec.sources
    in
    let bound dt =
      List.fold_left
        (fun acc ss ->
          match ss.ss_bound with
          | Some curve -> Cycles.( + ) acc (curve dt)
          | None -> acc)
        carry st.spec.sources
    in
    let arr = Array.of_list charges in
    let n = Array.length arr in
    let windows = List.sort_uniq Cycles.compare (st.spec.cycle :: st.spec.slots) in
    List.iter
      (fun dt ->
        let budget = bound dt in
        let j = ref 0 in
        let sum = ref 0 in
        for i = 0 to n - 1 do
          let anchor = fst arr.(i) in
          (* Grow the window to cover [anchor, anchor + dt). *)
          while !j < n && fst arr.(!j) < Cycles.( + ) anchor dt do
            sum := Cycles.( + ) !sum (snd arr.(!j));
            incr j
          done;
          if !sum > budget then
            report st
              (D.error ~code:"RTHV104"
                 ~loc:(Format.asprintf "window %a+%a" Cycles.pp anchor Cycles.pp dt)
                 ~hint:"equation (14) plus one carry-in bounds the \
                        interposition load in every window; an excess means \
                        the monitors under-enforced their conditions"
                 (Format.asprintf
                    "interpositions charged %a in the window, exceeding the \
                     summed eq.-(14) bound of %a"
                    Cycles.pp !sum Cycles.pp budget));
          (* Drop this anchor's charge before moving to the next anchor. *)
          sum := Cycles.( - ) !sum (snd arr.(i))
        done)
      windows
  end

(* RTHV109: a service claim asserts the analysis-level supply bound — the
   partition receives at least [sc_min_total] of net service over the run.
   Measuring less refutes the claimed bound; this is the confirmation
   channel for service-side refutations (RTHV006/RTHV017/RTHV020), as
   RTHV104 with claim curves is for interference-side ones. *)
let check_claims st =
  List.iter
    (fun { sc_partition; sc_min_total } ->
      if sc_partition >= 0 && sc_partition < Array.length st.service then
        let measured = st.service.(sc_partition) in
        if measured < sc_min_total then
          report st
            (D.error ~code:"RTHV109"
               ~loc:(Printf.sprintf "partition %d" sc_partition)
               ~hint:"the claimed supply bound does not hold on this run: \
                      the refutation's witness trace is confirmed"
               (Format.asprintf
                  "partition received %a of net service but the claim \
                   requires at least %a"
                  Cycles.pp measured Cycles.pp sc_min_total)))
    st.spec.claims

let replay spec entries =
  let st =
    {
      spec;
      diags = [];
      last_time = Cycles.zero;
      owner = 0;
      irq_line = Hashtbl.create 64;
      admitted_arrival = Hashtbl.create 64;
      history = Hashtbl.create 8;
      pending = None;
      active = None;
      completed = [];
      service = Array.make (Stdlib.max 1 spec.partitions) Cycles.zero;
      span_start = Cycles.zero;
      span_stolen = Cycles.zero;
      admitted_count = Hashtbl.create 8;
      raised = Hashtbl.create 64;
      bh_done = Hashtbl.create 64;
      raise_seen = false;
    }
  in
  List.iteri (fun index e -> step st index e) entries;
  close_span st st.last_time;
  st

let audit_entries spec entries =
  let st = replay spec entries in
  (* A trace cut mid-window (horizon) is not judged; only terminated
     interpositions enter the interference accounting. *)
  check_interference st;
  check_claims st;
  D.sort (List.rev st.diags)

type measurement = {
  m_horizon : Cycles.t;
  m_service : Cycles.t array;
  m_charges : (int option * Cycles.t * Cycles.t) list;
  m_admitted : (int * int) list;
}

let measure spec entries =
  let st = replay spec entries in
  {
    m_horizon = st.last_time;
    m_service = st.service;
    m_charges =
      List.rev_map (fun (t, cost, line) -> (line, t, cost)) st.completed;
    m_admitted =
      List.sort compare
        (Hashtbl.fold (fun line n acc -> (line, !n) :: acc) st.admitted_count []);
  }

let audit spec trace =
  let dropped = Hyp_trace.dropped trace in
  if dropped > 0 then
    [
      D.warning ~code:"RTHV107" ~loc:"trace"
        ~hint:"enlarge the trace capacity (Hyp_sim.audit_trace_capacity is \
               the audit default) or shorten the run"
        (Printf.sprintf
           "trace ring buffer dropped %d of %d entries; the invariant audit \
            needs the full stream and was skipped"
           dropped (Hyp_trace.recorded trace));
    ]
  else audit_entries spec (Hyp_trace.to_list trace)

let audit_store spec path =
  Result.map (audit_entries spec) (Rthv_core.Trace_store.read_entries path)

let invariants =
  [
    ("RTHV101", "trace timestamps go backwards");
    ("RTHV102", "admitted activation violates the configured delta^- condition");
    ("RTHV103", "interposition executed beyond its C_BH budget");
    ("RTHV104", "interposition load exceeds the eq.-(14) window bound");
    ("RTHV105", "bottom handler completed outside its subscriber's slot");
    ("RTHV106", "structurally inconsistent interposition event stream");
    ("RTHV107", "trace buffer dropped entries; audit skipped");
    ("RTHV108", "bottom-handler completion without exactly one matching raise");
    ("RTHV109", "measured net service refutes a claimed supply bound");
  ]
