(** Counterexample synthesis — the linter's adversarial confirmation layer.

    Every Error-severity refutation the static rules produce is a claim
    that some analysis-level guarantee does {e not} hold.  This module
    turns each such refutation into a concrete {e witness}: a
    {!Scenarios}-compatible configuration whose arrival streams are
    synthesized back-to-back δ⁻-conforming bursts ({!Rthv_workload.Gen}'s
    [adversarial] generator for monitored sources,
    {!Absint.adversarial_schedule} for the rate-based policies), replayed
    through {!Rthv_core.Hyp_sim}, and audited twice by {!Trace_oracle}:

    - once against the {e true} specification derived from the
      configuration — the run must be Error-clean, proving the trace is a
      legitimate behaviour of the modelled hypervisor, not an artifact of a
      broken replay; and
    - once against a {e claim} specification that embeds the refuted
      guarantee — the predicted oracle rule must fire, confirming the
      violation on the concrete trace.

    The linter can therefore never cry wolf: a refutation ships with a
    replayable trace on which an independent checker observes the claimed
    violation.  Two confirmation channels exist:

    - {b interference claims} (lint rules RTHV003/004/012/013/018 →
      oracle rule RTHV104): the claim spec carries the refuted interference
      curve in place of the true eq.-(14) bound, and the windowed charge
      audit finds a window whose interposition load exceeds it;
    - {b service claims} (lint rules RTHV002/005/006/017/020 → oracle rule
      RTHV109): the claim spec asserts the minimum net service the refuted
      guarantee implies, and the replay measures less.

    Warnings and infos carry no witness (nothing is refuted), and RTHV001
    cannot be simulated at all. *)

type claim =
  | Interference_claim of {
      ic_carrier : int;
          (** Line of the source carrying the claimed curve in the claim
              spec. *)
      ic_windows : (Rthv_engine.Cycles.t * Rthv_engine.Cycles.t) list;
          (** [(window, claimed bound)] at every audit window — the numbers
              a reviewer compares against the measured charges without
              evaluating any curve. *)
    }
  | Service_claim of {
      sv_partition : int;
      sv_min_total : Rthv_engine.Cycles.t;
          (** Net service over the whole run the refuted guarantee
              implies. *)
    }

type t = {
  w_code : string;  (** The refuted lint rule. *)
  w_loc : string;  (** The refuted diagnostic's location. *)
  w_predicted : string;  (** Oracle rule expected to confirm (RTHV104/109). *)
  w_claim : claim;
  w_config : Rthv_core.Config.t;
      (** The synthesized scenario: the linted configuration with
          adversarial arrival streams installed. *)
  w_arrivals : (int * Rthv_engine.Cycles.t array) list;
      (** [(line, interarrival distances)] actually synthesized, ascending
          by line — the replayable part of the artifact. *)
  w_baseline : Diagnostic.t list;
      (** True-spec audit of the replay; Error-free iff the trace is a
          legitimate hypervisor behaviour. *)
  w_oracle : Diagnostic.t list;  (** Claim-spec audit of the same replay. *)
  w_measured : Trace_oracle.measurement;
      (** The replay's measured service/charges, for the artifact. *)
  w_confirmed : bool;
      (** True-spec audit Error-clean {e and} [w_predicted] present in the
          claim-spec audit. *)
  w_digest : string;
      (** Hex MD5 over the synthesized arrival streams — tamper-evidence
          for serialized witnesses. *)
}

val channels : (string * string) list
(** [(lint rule, predicted oracle rule)] for every rule that carries a
    witness channel, in code order. *)

val digest_of_arrivals :
  (int * Rthv_engine.Cycles.t array) list -> string
(** The [w_digest] function: hex MD5 over the canonical rendering of the
    arrival streams.  Exposed so {!Certify.recheck} can re-verify a
    serialized witness's digest without re-running synthesis. *)

val synthesize : Rthv_core.Config.t -> Diagnostic.t -> t option
(** Synthesize and replay the witness for one diagnostic of [config].
    [None] when the diagnostic is not an Error, its rule has no witness
    channel, its location no longer resolves, or the configuration fails
    validation. *)

val all : Rthv_core.Config.t -> (Diagnostic.t * t) list
(** Run {!Lint.analyze} and witness every Error that has a channel, in
    diagnostic order.  The linter's certification obligation: each returned
    witness should satisfy [w_confirmed]. *)

val certified : Rthv_core.Config.t -> Diagnostic.t list * (Diagnostic.t * t) list
(** The counterexample-guided pipeline behind [rthv_lint --certify]: lint,
    then witness every channelled Error and {e demote to Warning} any whose
    replay fails to confirm (the refutation held only under proved — not
    jointly achievable — bounds).  Every Error in the returned diagnostics
    either carries a confirmed witness in the second component or is a
    structural rule with no simulation channel (RTHV001, RTHV011), so the
    certified verdict never cries wolf.  Diagnostic order is preserved. *)
