(** JSON serialization of {!Rthv_core.Config.t} — the fleet interchange
    format.

    Batch linting ({!Fleet}) and the CI-generated config corpus need
    configurations as files; this codec round-trips the analyzable surface
    of a configuration through {!Rthv_obs.Json}:

    - the named platforms ([arm926ejs_200mhz], [ideal]) by name;
    - both slot plans, both boundary policies, both guest policies, both
      arrival modes and all six shaping variants (δ⁻ functions as their
      entry arrays);
    - partitions with their guest task sets and sources with their
      pre-generated interarrival streams.

    Hypervisor IPC ports, task IPC endpoints and task-activating sources
    do not serialize (no fleet scenario uses them); {!to_json} refuses
    such configurations rather than dropping fields silently.  Decoding is
    structural only — a decoded configuration may still fail
    {!Rthv_core.Config.validate}, which is exactly what lint rule RTHV001
    reports. *)

val to_json : Rthv_core.Config.t -> (Rthv_obs.Json.t, string) result
(** [Error _] on unnamed platforms or configurations using the
    non-serializable features listed above. *)

val to_string : Rthv_core.Config.t -> (string, string) result
(** [to_json] rendered to a string. *)

val of_json : Rthv_obs.Json.t -> (Rthv_core.Config.t, string) result
(** Decode; missing [boundary]/[plan]/[shaping]/[arrival_mode]/[tasks]
    fields take the same defaults as the {!Rthv_core.Config} constructors. *)

val of_string : string -> (Rthv_core.Config.t, string) result
(** Parse then {!of_json}. *)
