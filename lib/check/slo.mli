(** Streaming SLO gauges: observed latency vs the analytic bounds.

    {!Headroom} judges a finished run by reading the registry's summaries.
    This module is the streaming counterpart: it precomputes the
    equations-(11)/(12)/(16) bounds once ({!Headroom.bounds}) and then
    folds latency samples in one at a time — from a live simulation (via
    {!sink}) or from a trace-store scan (via {!observe}, the
    [Trace_query.run ~on_sample] hook) — keeping per-(source, class) burn
    gauges current as the stream goes by:

    - [rthv_slo_latency_bound_us] — the analytic bound for the series;
    - [rthv_slo_worst_latency_us] — worst observed latency so far;
    - [rthv_slo_burn_ratio] — worst / bound; crossing 1.0 is a violation;
    - [rthv_slo_samples_total], [rthv_slo_violations_total] — counters.

    All are labelled [{source, class}] and registered in the registry
    passed to {!create} (when any), so a live exposition shows bound burn
    while the run is still going.  A series whose class has no finite
    bound (e.g. interposed on an unshaped source) keeps counting samples
    but can never violate. *)

type verdict = {
  sv_source : string;
  sv_class : string;  (** ["direct" | "interposed" | "delayed" | ...]. *)
  sv_count : int;  (** Latency samples folded into this series. *)
  sv_worst_us : float;
  sv_bound_us : float option;  (** [None]: no finite analytic bound. *)
  sv_burn : float option;  (** [worst / bound] when bounded; > 1 is bad. *)
  sv_violations : int;  (** Samples that individually exceeded the bound. *)
}

type t

val create : ?registry:Rthv_obs.Registry.t -> Rthv_core.Config.t -> t
(** Precompute the bounds for [config]'s sources.  With [registry] the
    gauges and counters above are kept current on every {!observe}. *)

val observe : t -> source:string -> cls:string -> latency_us:float -> unit
(** Fold one latency sample.  Series appear lazily, so samples for a
    (source, class) pair the analysis did not anticipate — including the
    query engine's ["unknown"] class — are still counted (unbounded). *)

val sink : t -> Rthv_obs.Sink.t
(** A sink feeding every [rthv_irq_latency_us] observation carrying
    [source] and [class] labels into {!observe} and ignoring everything
    else; {!Rthv_obs.Sink.tee} it with a recorder's sink to watch a live
    run without giving up metrics capture. *)

val verdicts : t -> verdict list
(** One per series seen so far, sorted by source then class. *)

val ok : t -> bool
(** No series has violated its bound. *)

val pp : Format.formatter -> t -> unit
(** Text table of {!verdicts} plus a one-line summary. *)

val to_json : t -> Rthv_obs.Json.t
(** [{"schema": "rthv-slo/1", "ok": bool, "series": [...]}]. *)
