(* Streaming SLO gauges.  See slo.mli.

   One mutable record per (source, class) series, created lazily on the
   first sample and cached in a hashtable, so the steady-state cost of a
   sample is a hash lookup plus a few float compares and ref updates —
   cheap enough to sit inside a live simulation's sink or a million-event
   store scan. *)

module Registry = Rthv_obs.Registry
module Labels = Rthv_obs.Labels
module Json = Rthv_obs.Json

type verdict = {
  sv_source : string;
  sv_class : string;
  sv_count : int;
  sv_worst_us : float;
  sv_bound_us : float option;
  sv_burn : float option;
  sv_violations : int;
}

type series = {
  se_source : string;
  se_class : string;
  se_bound_us : float option;
  mutable se_count : int;
  mutable se_worst_us : float;
  mutable se_violations : int;
  (* Registry-backed cells, shared with the exposition (None without a
     registry). *)
  se_worst_gauge : float ref option;
  se_burn_gauge : float ref option;
  se_samples : int ref option;
  se_violations_counter : int ref option;
}

type t = {
  bounds : Headroom.bound list;
  registry : Registry.t option;
  table : (string * string, series) Hashtbl.t;
}

let help =
  [
    ("rthv_slo_latency_bound_us", "Analytic latency bound for the series (eqs. 11/12/16).");
    ("rthv_slo_worst_latency_us", "Worst observed IRQ latency so far, by source and class.");
    ("rthv_slo_burn_ratio", "Worst observed latency divided by the analytic bound.");
    ("rthv_slo_samples_total", "Latency samples folded into the SLO series.");
    ("rthv_slo_violations_total", "Latency samples that exceeded the analytic bound.");
  ]

let create ?registry config =
  Option.iter (fun r -> List.iter (fun (n, d) -> Registry.set_help r n d) help) registry;
  { bounds = Headroom.bounds config; registry; table = Hashtbl.create 16 }

let series t ~source ~cls =
  match Hashtbl.find_opt t.table (source, cls) with
  | Some s -> s
  | None ->
      let bound = Headroom.bound_for t.bounds ~source ~cls in
      let labels = Labels.v [ ("source", source); ("class", cls) ] in
      let gauge name = Option.map (fun r -> Registry.gauge r ~labels name) t.registry in
      let counter name = Option.map (fun r -> Registry.counter r ~labels name) t.registry in
      (match (t.registry, bound) with
      | Some r, Some b -> Registry.set_gauge r ~labels "rthv_slo_latency_bound_us" b
      | _ -> ());
      let s =
        {
          se_source = source;
          se_class = cls;
          se_bound_us = bound;
          se_count = 0;
          se_worst_us = 0.;
          se_violations = 0;
          se_worst_gauge = gauge "rthv_slo_worst_latency_us";
          se_burn_gauge = Option.bind bound (fun _ -> gauge "rthv_slo_burn_ratio");
          se_samples = counter "rthv_slo_samples_total";
          se_violations_counter = counter "rthv_slo_violations_total";
        }
      in
      Hashtbl.add t.table (source, cls) s;
      s

let observe t ~source ~cls ~latency_us =
  let s = series t ~source ~cls in
  s.se_count <- s.se_count + 1;
  Option.iter (fun r -> incr r) s.se_samples;
  if latency_us > s.se_worst_us then begin
    s.se_worst_us <- latency_us;
    Option.iter (fun r -> r := latency_us) s.se_worst_gauge;
    match (s.se_bound_us, s.se_burn_gauge) with
    | Some b, Some r when b > 0. -> r := latency_us /. b
    | _ -> ()
  end;
  match s.se_bound_us with
  | Some b when latency_us > b ->
      s.se_violations <- s.se_violations + 1;
      Option.iter (fun r -> incr r) s.se_violations_counter
  | _ -> ()

let sink t =
  {
    Rthv_obs.Sink.noop with
    observe =
      (fun name labels v ->
        if String.equal name "rthv_irq_latency_us" then
          let l = Labels.to_list labels in
          match (List.assoc_opt "source" l, List.assoc_opt "class" l) with
          | Some source, Some cls -> observe t ~source ~cls ~latency_us:v
          | _ -> ());
  }

let burn s =
  match s.se_bound_us with
  | Some b when b > 0. -> Some (s.se_worst_us /. b)
  | _ -> None

let verdicts t =
  Hashtbl.fold
    (fun _ s acc ->
      {
        sv_source = s.se_source;
        sv_class = s.se_class;
        sv_count = s.se_count;
        sv_worst_us = s.se_worst_us;
        sv_bound_us = s.se_bound_us;
        sv_burn = burn s;
        sv_violations = s.se_violations;
      }
      :: acc)
    t.table []
  |> List.sort (fun a b ->
         match compare a.sv_source b.sv_source with
         | 0 -> compare a.sv_class b.sv_class
         | c -> c)

let ok t = Hashtbl.fold (fun _ s acc -> acc && s.se_violations = 0) t.table true

let pp ppf t =
  let vs = verdicts t in
  Format.fprintf ppf "@[<v>%-14s %-11s %8s %12s %12s %8s %6s@,"
    "source" "class" "samples" "worst_us" "bound_us" "burn" "viol";
  List.iter
    (fun v ->
      let bound = match v.sv_bound_us with Some b -> Printf.sprintf "%.2f" b | None -> "-" in
      let burn = match v.sv_burn with Some b -> Printf.sprintf "%.3f" b | None -> "-" in
      Format.fprintf ppf "%-14s %-11s %8d %12.2f %12s %8s %6d@," v.sv_source
        v.sv_class v.sv_count v.sv_worst_us bound burn v.sv_violations)
    vs;
  Format.fprintf ppf "slo: %s (%d series)@]"
    (if ok t then "ok" else "VIOLATED")
    (List.length vs)

let to_json t =
  let series =
    List.map
      (fun v ->
        Json.Obj
          ([
             ("source", Json.String v.sv_source);
             ("class", Json.String v.sv_class);
             ("samples", Json.Int v.sv_count);
             ("worst_us", Json.Float v.sv_worst_us);
           ]
          @ (match v.sv_bound_us with
            | Some b -> [ ("bound_us", Json.Float b) ]
            | None -> [])
          @ (match v.sv_burn with
            | Some b -> [ ("burn", Json.Float b) ]
            | None -> [])
          @ [ ("violations", Json.Int v.sv_violations) ]))
      (verdicts t)
  in
  Json.Obj
    [
      ("schema", Json.String "rthv-slo/1");
      ("ok", Json.Bool (ok t));
      ("series", Json.List series);
    ]
