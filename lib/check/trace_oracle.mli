(** Pass 2 — trace-invariant oracle.

    A replay checker over a {!Rthv_core.Hyp_trace} event stream: given the
    configuration the trace was produced under, verify that the hypervisor's
    observable behaviour stayed inside the paper's guarantees.  The oracle is
    the runtime complement of the static analyzer — {!Lint} proves the
    configuration admits a bound, this pass proves a concrete run respected
    it.

    Invariant codes:

    - [RTHV101] trace timestamps go backwards (Error);
    - [RTHV102] an [`Admitted] monitor decision violates the configured
      delta^- condition against the previously admitted activations of the
      same line (Error) — checked for every source whose admitted stream has
      a statically known condition ([Fixed_monitor], or the load bound of a
      bounded [Self_learning] monitor, which Algorithm 2 makes at least as
      strict as the learned condition);
    - [RTHV103] an interposition executed longer than its C_BH budget:
      [(end - start)] minus the hypervisor work that preempted the window
      (top handlers, monitor runs, boundary context switches) exceeds the
      granted budget (Error);
    - [RTHV104] the completed interpositions, each charged
      [C_sched + 2*C_ctx + execution] at its admitted activation's arrival
      time, exceed the summed equation-(14) interference bound (plus one
      carry-in) in some sliding window anchored at a charge and sized by a
      partition slot or the TDMA cycle (Error) — skipped when any shaped
      source has no static bound;
    - [RTHV105] a bottom handler completed outside its subscriber's slot
      with no admitted interposition targeting the subscriber in flight
      (Error);
    - [RTHV106] structural stream violations: an interposition starting
      while another is active or without a matching admitted decision, an
      end or boundary-crossing with no (or the wrong) interposition in
      flight, events naming an unconfigured interrupt line, a slot switch
      from a partition that did not own the slot (Error);
    - [RTHV107] the trace ring buffer dropped entries, so no verdict is
      possible — the audit is skipped (Info);
    - [RTHV108] a bottom-handler completion without exactly one matching
      raise (Error);
    - [RTHV109] a {!service_claim} asserts a minimum of net service for a
      partition and the replay measured less (Error) — the oracle-side
      refutation channel for claimed supply bounds, used by {!Witness} the
      way RTHV104 with claim curves is used for interference bounds.  Never
      fires from {!of_config} specs ([claims] is empty there).

    A trace that ends mid-interposition (horizon cut) is not an error; the
    unfinished window is simply not judged. *)

type source_spec = {
  ss_line : int;
  ss_name : string;
  ss_subscriber : int;
  ss_c_th : Rthv_engine.Cycles.t;
  ss_budget : Rthv_engine.Cycles.t;  (** C_BH: the interposition budget. *)
  ss_c_bh_eff : Rthv_engine.Cycles.t;  (** Equation (13). *)
  ss_shaped : bool;
  ss_condition : Rthv_analysis.Distance_fn.t option;
      (** Static delta^- the admitted stream must respect; [None] when the
          source is unshaped, bucket-throttled, degenerate, or learning
          without a bound. *)
  ss_bound : Rthv_analysis.Independence.interference_curve option;
      (** Static eq.-(14)-style interference curve, when one exists. *)
}

type service_claim = {
  sc_partition : int;
  sc_min_total : Rthv_engine.Cycles.t;
      (** Net service (owned span length minus the slot-entry switch, the
          hypervisor work and the bottom-half executions inside it) the
          partition must accumulate over the whole trace. *)
}

type spec = {
  partitions : int;
  slots : Rthv_engine.Cycles.t list;
  cycle : Rthv_engine.Cycles.t;
  c_mon : Rthv_engine.Cycles.t;
  c_sched : Rthv_engine.Cycles.t;
  c_ctx : Rthv_engine.Cycles.t;
  sources : source_spec list;
  claims : service_claim list;
      (** Analysis-level supply bounds to audit against the replay
          (RTHV109); empty from {!of_config}. *)
}

val of_config : Rthv_core.Config.t -> spec
(** Derive the oracle's expectations from a configuration (the same values
    {!Rthv_core.Hyp_sim} runs under).  [claims] is empty. *)

val audit_entries :
  spec -> Rthv_core.Hyp_trace.entry list -> Diagnostic.t list
(** Audit a raw entry list (oldest first), e.g. one built by hand in a
    test.  Diagnostics are returned sorted most severe first. *)

val audit : spec -> Rthv_core.Hyp_trace.t -> Diagnostic.t list
(** Audit a recorded trace.  If the ring buffer dropped entries the result
    is a single [RTHV107] warning and nothing else is checked — a skipped
    audit is a blind spot, not mere trivia, so {!Audit_hook} surfaces it. *)

val audit_store : spec -> string -> (Diagnostic.t list, string) result
(** Audit the event stream of a binary trace store
    ({!Rthv_core.Trace_store}): archived certification evidence replays
    through the oracle without a JSONL detour.  IO and corruption problems
    come back as [Error msg]. *)

type measurement = {
  m_horizon : Rthv_engine.Cycles.t;  (** Last trace timestamp. *)
  m_service : Rthv_engine.Cycles.t array;
      (** Per-partition net service accumulated over the run. *)
  m_charges : (int option * Rthv_engine.Cycles.t * Rthv_engine.Cycles.t) list;
      (** Completed interpositions, newest first:
          [(source line, charge time, C_sched + 2*C_ctx + execution)] — the
          exact quantities RTHV104 audits, tagged by line so witnesses can
          report the measured interference of the refuted source. *)
  m_admitted : (int * int) list;
      (** Admissions per line, ascending by line. *)
}

val measure : spec -> Rthv_core.Hyp_trace.entry list -> measurement
(** Replay without judging: the measured quantities a {!Witness} embeds in
    its artifact so a reviewer can compare prediction against observation
    without re-running the simulation. *)

val invariants : (string * string) list
(** [(code, one-line description)] for every trace invariant, in code
    order. *)
