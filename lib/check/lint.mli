(** Pass 1 — static configuration analyzer.

    A rule engine over {!Rthv_core.Config} values that cross-checks every
    configuration against the paper's analysis before a single cycle is
    simulated.  Rules are not syntactic pattern matches: where the paper
    provides an equation, the rule evaluates it — the schedulability rules
    run the real {!Rthv_analysis.Certificate} / {!Rthv_analysis.Guest_sched}
    busy-window analysis, the overload rules evaluate the equation-(14)
    utilisation loss of the configured monitoring conditions.

    Rule codes (see also DESIGN.md for the paper-equation mapping):

    - [RTHV001] configuration fails {!Rthv_core.Config.validate} (Error);
    - [RTHV002] a partition slot cannot cover the slot-entry context switch
      (Error);
    - [RTHV003] a monitoring condition admits unbounded load — eq. (14)
      yields no bound (Error);
    - [RTHV004] the granted monitors' long-term eq.-(14) interference
      utilisation reaches 1.0 (Error);
    - [RTHV005] a partition's task set fails the sufficient-temporal-
      independence certificate, eq. (2) with eq.-(14) interference (Error);
    - [RTHV006] a partition's task utilisation exceeds its TDMA share even
      before interference (Error);
    - [RTHV007] a self-learning monitor never reaches a useful run phase
      (Warning);
    - [RTHV008] a shaped source never fires — the grant is vacuous
      (Warning);
    - [RTHV009] the workload's average rate exceeds the monitoring
      condition, so sustained denials are expected (Info);
    - [RTHV010] a token-bucket throttle with a burst allowance dominates the
      equivalent d_min bound (Warning);
    - [RTHV011] duplicate partition names (Warning);
    - [RTHV012] a bottom handler does not fit its subscriber's slot / a
      grant's effective cost exceeds the subscriber's slot (Warning/Error);
    - [RTHV013] a per-source interposition budget's aligned-window bound can
      consume an entire foreign slot (Error);
    - [RTHV014] a composite monitor-and-bucket's bucket is provably vacuous
      against its monitoring condition (Info) or can deny conforming
      activations so eq. (16) does not apply (Warning);
    - [RTHV015] a per-source interposition budget the workload can never
      exhaust — dead configuration still paying C_Mon (Info);
    - [RTHV016] a source claims the eq.-(16) per-instance bound but other
      shaped sources can interpose — cross-source queueing voids the
      sole-interposer assumption (Warning);
    - [RTHV017] a weighted plan's effective slot can no longer complete a
      bottom handler that the partition's declared slot could — the plan
      starves the subscriber (Error);
    - [RTHV018] the interval certificate (every active policy's curve,
      buckets and budgets included) refutes a partition the grant-only
      closed form passed (Error);
    - [RTHV019] an admission policy allows more interpositions per cycle
      than the serialization ceiling can physically complete — the eq.-(14)
      budget is provably conservative (Info);
    - [RTHV020] sustained demand (tasks plus subscribed sources' bottom-half
      load) exceeds the partition's TDMA share — unbounded backlog (Error).

    All slot-dependent rules evaluate {!Rthv_core.Config.effective_slots},
    so weighted slot plans are linted against the schedule actually run.

    Rules RTHV002..RTHV006 and RTHV013/RTHV015..RTHV020 read the interval
    facts of {!Absint} — one abstract interpretation per [analyze] call —
    and the remaining rules the configuration directly. *)

val analyze : Rthv_core.Config.t -> Diagnostic.t list
(** Run every rule; diagnostics are returned sorted most severe first.  If
    the configuration fails [Config.validate], only [RTHV001] is reported
    (the remaining rules assume structural validity). *)

val rules : (string * string) list
(** [(code, one-line description)] for every static rule, in code order. *)

val c_bh_eff :
  platform:Rthv_hw.Platform.t -> c_bh:Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Equation (13): [C'_BH = C_BH + C_sched + 2*C_ctx] for the platform. *)

val static_condition :
  Rthv_core.Config.shaping -> Rthv_analysis.Distance_fn.t option
(** The statically known delta^- envelope of the admitted stream: the
    configured condition for [Fixed_monitor], the load bound for a bounded
    [Self_learning] monitor (Algorithm 2 raises every learned entry to the
    bound, so the run-phase condition is at least as strict), [None]
    otherwise. *)

val degenerate : Rthv_analysis.Distance_fn.t -> bool
(** All entries zero: eq. (14) yields no bound. *)

val shaped : Rthv_core.Config.source -> bool
(** The source uses the modified top handler or the throttle baseline. *)

val bound_policy :
  cycle:Rthv_engine.Cycles.t ->
  Rthv_core.Config.shaping ->
  Rthv_analysis.Bound.policy
(** The analysis-side descriptor of a shaping policy — the single mapping
    from configuration variants onto {!Rthv_analysis.Bound.policy}, shared
    by this linter, {!Trace_oracle} and {!Headroom}.  [cycle] (the TDMA
    cycle length) parameterizes budgeted policies. *)
