exception Audit_failure of Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Audit_failure diags ->
        let shown = 10 in
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        let rendered =
          List.map
            (fun d -> Format.asprintf "  %a" Diagnostic.pp d)
            (take shown diags)
        in
        let more =
          if List.length diags > shown then
            [ Printf.sprintf "  ... and %d more" (List.length diags - shown) ]
          else []
        in
        Some
          (String.concat "\n"
             (Printf.sprintf "Audit_failure: %d finding(s)"
                (List.length diags)
             :: rendered
             @ more))
    | _ -> None)

let default_fail diags = raise (Audit_failure diags)

let install ?(fail = default_fail) () =
  Rthv_core.Hyp_sim.set_audit_hook
    (Some
       (fun config trace ->
         let spec = Trace_oracle.of_config config in
         let diags = Trace_oracle.audit spec trace in
         if List.exists Diagnostic.is_error diags then fail diags))

let uninstall () = Rthv_core.Hyp_sim.set_audit_hook None
let installed = Rthv_core.Hyp_sim.audit_hook_installed
