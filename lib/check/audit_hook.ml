exception Audit_failure of Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Audit_failure diags ->
        let shown = 10 in
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        let rendered =
          List.map
            (fun d -> Format.asprintf "  %a" Diagnostic.pp d)
            (take shown diags)
        in
        let more =
          if List.length diags > shown then
            [ Printf.sprintf "  ... and %d more" (List.length diags - shown) ]
          else []
        in
        Some
          (String.concat "\n"
             (Printf.sprintf "Audit_failure: %d finding(s)"
                (List.length diags)
             :: rendered
             @ more))
    | _ -> None)

let default_fail diags = raise (Audit_failure diags)

let default_warn diags =
  List.iter (fun d -> Format.eprintf "audit: %a@." Diagnostic.pp d) diags

let install ?(fail = default_fail) ?(warn = default_warn) () =
  Rthv_core.Hyp_sim.set_audit_hook
    (Some
       (fun config trace ->
         let spec = Trace_oracle.of_config config in
         let diags = Trace_oracle.audit spec trace in
         if List.exists Diagnostic.is_error diags then begin
           (* Post-mortem first: persist the events that led to the
              violation before the failure continuation (which typically
              raises) unwinds. *)
           let detail =
             List.filter Diagnostic.is_error diags
             |> List.map (fun d -> d.Diagnostic.code)
             |> List.sort_uniq String.compare
             |> String.concat ","
           in
           ignore
             (Rthv_core.Flight_recorder.dump ~reason:"oracle_violation"
                ~detail ()
               : string option);
           fail diags
         end
         else begin
           (* A dropped-trace RTHV107 means the audit never ran — surface
              it instead of letting the skip pass as a clean verdict. *)
           match
             List.filter
               (fun d -> d.Diagnostic.severity = Diagnostic.Warning)
               diags
           with
           | [] -> ()
           | warnings -> warn warnings
         end))

let uninstall () = Rthv_core.Hyp_sim.set_audit_hook None
let installed = Rthv_core.Hyp_sim.audit_hook_installed
