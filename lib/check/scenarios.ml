module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Gen = Rthv_workload.Gen
module Ecu_trace = Rthv_workload.Ecu_trace

(* --- quickstart --------------------------------------------------------- *)

let quickstart_d_min = Cycles.of_us 2_000

let quickstart ?(monitored = true) () =
  let partitions =
    [
      Config.partition ~name:"control" ~slot_us:5_000 ();
      Config.partition ~name:"io" ~slot_us:5_000 ();
    ]
  in
  let interarrivals =
    Gen.exponential ~seed:1 ~mean:quickstart_d_min ~count:2_000
  in
  let shaping =
    if monitored then Config.Fixed_monitor (DF.d_min quickstart_d_min)
    else Config.No_shaping
  in
  let nic =
    Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
      ~interarrivals ~shaping ()
  in
  Config.make ~partitions ~sources:[ nic ] ()

(* --- avionics ----------------------------------------------------------- *)

let avionics_datalink_bh_us = 60

let avionics_c_bh_eff () =
  Lint.c_bh_eff
    ~platform:Rthv_hw.Platform.arm926ejs_200mhz
    ~c_bh:(Cycles.of_us avionics_datalink_bh_us)

let avionics_d_min () =
  Independence.required_d_min ~c_bh_eff:(avionics_c_bh_eff ())
    ~max_utilisation:0.03

let avionics_ima () =
  let partitions =
    [
      Config.partition ~name:"flight_ctl" ~slot_us:4_000
        ~tasks:
          [
            Task.spec ~name:"attitude" ~period_us:12_000 ~wcet_us:800
              ~priority:0 ();
            Task.spec ~name:"actuator" ~period_us:24_000 ~wcet_us:1_200
              ~priority:1 ();
          ]
        ();
      Config.partition ~name:"nav" ~slot_us:4_000
        ~tasks:[ Task.spec ~name:"kalman" ~period_us:24_000 ~wcet_us:2_500 () ]
        ();
      Config.partition ~name:"datalink" ~slot_us:3_000 ();
      Config.partition ~name:"maint" ~slot_us:1_000 ();
    ]
  in
  let d_min = avionics_d_min () in
  let sources =
    [
      Config.source ~name:"sensor_bus" ~line:0 ~subscriber:0 ~c_th_us:4
        ~c_bh_us:30
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 6_000) ~count:2_000)
        ();
      Config.source ~name:"datalink_rx" ~line:1 ~subscriber:2 ~c_th_us:6
        ~c_bh_us:avionics_datalink_bh_us
        ~interarrivals:
          (Gen.exponential_clamped ~seed:7 ~mean:(Cycles.( * ) d_min 2) ~d_min
             ~count:3_000)
        ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
        ();
    ]
  in
  Config.make ~partitions ~sources ()

(* --- automotive (Appendix A) ------------------------------------------- *)

type automotive = {
  auto_config : Config.t;
  auto_learn_events : int;
  auto_recorded : DF.t;
  auto_bound : DF.t;
}

let automotive_parts () =
  let trace = Ecu_trace.generate ~seed:42 Ecu_trace.default_profile in
  let distances = Ecu_trace.to_distances trace in
  let learn_events = Array.length distances / 10 in
  let prefix = List.filteri (fun i _ -> i < learn_events) trace in
  let recorded = DF.of_trace ~l:5 prefix in
  let bound = DF.scale_load recorded ~factor:0.25 in
  let partitions =
    [
      Config.partition ~name:"engine" ~slot_us:6_000 ();
      Config.partition ~name:"gateway" ~slot_us:6_000 ();
      Config.partition ~name:"hk" ~slot_us:2_000 ();
    ]
  in
  let can_rx =
    Config.source ~name:"can_rx" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:50
      ~interarrivals:distances
      ~shaping:(Config.Self_learning { l = 5; learn_events; bound = Some bound })
      ()
  in
  {
    auto_config = Config.make ~partitions ~sources:[ can_rx ] ();
    auto_learn_events = learn_events;
    auto_recorded = recorded;
    auto_bound = bound;
  }

let automotive_ecu () = (automotive_parts ()).auto_config

(* --- the linter's demonstration input ----------------------------------- *)

(* Structurally valid (passes Config.validate) yet wrong in every way the
   static rules can catch: a useless 40 us slot (RTHV002), an unbounded
   monitor (RTHV003), a d_min grant eating >100 % of the processor
   (RTHV004), an overloaded task set (RTHV005/RTHV006), a monitor that
   never learns (RTHV007) on a source that never fires (RTHV008), a
   workload denser than its condition (RTHV009), a bursty token bucket
   (RTHV010), duplicate partition names (RTHV011), and a bottom handler
   bigger than its subscriber's slot (RTHV012). *)
let demo_bad () =
  let partitions =
    [
      Config.partition ~name:"ctl" ~slot_us:40 ();
      Config.partition ~name:"io" ~slot_us:2_000
        ~tasks:[ Task.spec ~name:"crunch" ~period_us:10_000 ~wcet_us:8_000 () ]
        ();
      Config.partition ~name:"dup" ~slot_us:500 ();
      Config.partition ~name:"dup" ~slot_us:500 ();
    ]
  in
  let sources =
    [
      Config.source ~name:"unbounded" ~line:0 ~subscriber:1 ~c_th_us:5
        ~c_bh_us:10
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 1_000) ~count:16)
        ~shaping:(Config.Fixed_monitor (DF.unbounded ~l:1))
        ();
      Config.source ~name:"nolearn" ~line:1 ~subscriber:1 ~c_th_us:5
        ~c_bh_us:10 ~interarrivals:[||]
        ~shaping:(Config.Self_learning { l = 1; learn_events = 0; bound = None })
        ();
      Config.source ~name:"burst" ~line:2 ~subscriber:1 ~c_th_us:5 ~c_bh_us:10
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 2_000) ~count:16)
        ~shaping:
          (Config.Token_bucket { capacity = 4; refill = Cycles.of_us 1_000 })
        ();
      Config.source ~name:"hog" ~line:3 ~subscriber:0 ~c_th_us:5 ~c_bh_us:150
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 5_000) ~count:16)
        ~shaping:(Config.Fixed_monitor (DF.d_min (Cycles.of_us 200)))
        ();
      Config.source ~name:"chatty" ~line:4 ~subscriber:1 ~c_th_us:5
        ~c_bh_us:10
        ~interarrivals:(Gen.exponential ~seed:3 ~mean:(Cycles.of_us 300) ~count:64)
        ~shaping:(Config.Fixed_monitor (DF.d_min (Cycles.of_us 1_000)))
        ();
    ]
  in
  Config.make ~partitions ~sources ()

(* --- the policy-layer demonstration input ------------------------------- *)

(* Structurally valid and clean under the grant-only closed forms, yet
   wrong in the ways only the interval analysis over the full policy set
   can catch: a weighted plan whose effective slot starves a subscriber
   that its declared slot could serve (RTHV017), a per-cycle interposition
   budget whose aligned-window bound swallows the foreign slots entirely
   (RTHV013), and a partition whose task set passes the grant-only
   certificate but fails once the budget and bucket curves are added to
   the interference budget (RTHV018).  A dead per-cycle budget (RTHV015)
   and a bursty token bucket (RTHV010) ride along. *)
let demo_policy_bad () =
  let partitions =
    [
      Config.partition ~name:"sys" ~slot_us:6_000
        ~tasks:[ Task.spec ~name:"plan" ~period_us:20_000 ~wcet_us:1_000 () ]
        ();
      Config.partition ~name:"app" ~slot_us:6_000 ();
      Config.partition ~name:"hk" ~slot_us:2_000 ();
    ]
  in
  (* 10:3:1 over 14 ms: sys grows to 10 ms, app shrinks to 3 ms, hk to
     1 ms — app's declared 6 ms slot could complete the DMA bottom
     handler, its effective 3 ms slot cannot. *)
  let plan =
    Config.Weighted_plan
      { cycle = Cycles.of_us 14_000; weights = [| 10; 3; 1 |] }
  in
  let sources =
    [
      Config.source ~name:"dma" ~line:0 ~subscriber:1 ~c_th_us:5
        ~c_bh_us:4_000
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 40_000) ~count:64)
        ();
      Config.source ~name:"radar" ~line:1 ~subscriber:0 ~c_th_us:5
        ~c_bh_us:25
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 2_000) ~count:512)
        ~shaping:(Config.Budgeted { per_cycle = 40 })
        ();
      Config.source ~name:"tick" ~line:2 ~subscriber:2 ~c_th_us:5 ~c_bh_us:1
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 4_000) ~count:256)
        ~shaping:(Config.Budgeted { per_cycle = 8 })
        ();
      Config.source ~name:"uplink" ~line:3 ~subscriber:2 ~c_th_us:5
        ~c_bh_us:60
        ~interarrivals:
          (Gen.exponential ~seed:21 ~mean:(Cycles.of_us 3_000) ~count:256)
        ~shaping:
          (Config.Token_bucket { capacity = 2; refill = Cycles.of_us 600 })
        ();
    ]
  in
  Config.make ~partitions ~plan ~sources ()

(* --- the paper's conforming workload (Section 6.1, scenario 2) ---------- *)

(* The quickstart topology with interarrivals clamped from below to the
   granted d_min: every activation satisfies the monitoring condition, so
   the admitted stream is the whole stream and the per-instance eq.-(16)
   bound applies to every interposed completion ({!Headroom}). *)
let conformant () =
  let partitions =
    [
      Config.partition ~name:"control" ~slot_us:5_000 ();
      Config.partition ~name:"io" ~slot_us:5_000 ();
    ]
  in
  let interarrivals =
    Gen.exponential_clamped ~seed:2 ~mean:quickstart_d_min
      ~d_min:quickstart_d_min ~count:2_000
  in
  let nic =
    Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
      ~interarrivals
      ~shaping:(Config.Fixed_monitor (DF.d_min quickstart_d_min))
      ()
  in
  Config.make ~partitions ~sources:[ nic ] ()

(* --- post-paper policy mix ---------------------------------------------- *)

(* Every policy-core extension in one configuration: a weighted slot plan
   (3:3:1 over the quickstart's 14 ms cycle), a composite
   monitor-AND-bucket source whose bucket is provably vacuous (eq. (16)
   still applies, RTHV014 reports info), and a per-cycle interposition
   budget source (no distance condition, so only the aligned-window
   interference cap and the baseline latency bound apply). *)
let mixed_policies_d_min = Cycles.of_us 2_000

let mixed_policies () =
  let partitions =
    [
      Config.partition ~name:"control" ~slot_us:6_000 ();
      Config.partition ~name:"io" ~slot_us:6_000 ();
      Config.partition ~name:"hk" ~slot_us:2_000 ();
    ]
  in
  let plan =
    Config.Weighted_plan
      { cycle = Cycles.of_us 14_000; weights = [| 3; 3; 1 |] }
  in
  let cam =
    Config.source ~name:"cam" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
      ~interarrivals:
        (Gen.exponential_clamped ~seed:11 ~mean:mixed_policies_d_min
           ~d_min:mixed_policies_d_min ~count:1_500)
      ~shaping:
        (Config.Monitor_and_bucket
           {
             fn = DF.d_min mixed_policies_d_min;
             capacity = 1;
             refill = mixed_policies_d_min;
           })
      ()
  in
  let telemetry =
    Config.source ~name:"telemetry" ~line:1 ~subscriber:0 ~c_th_us:5
      ~c_bh_us:50
      ~interarrivals:
        (Gen.exponential ~seed:12 ~mean:(Cycles.of_us 3_000) ~count:1_500)
      ~shaping:(Config.Budgeted { per_cycle = 2 })
      ()
  in
  Config.make ~partitions ~plan ~sources:[ cam; telemetry ] ()

let good =
  [
    ("quickstart", fun () -> quickstart ());
    ("conformant", conformant);
    ("avionics_ima", avionics_ima);
    ("automotive_ecu", automotive_ecu);
    ("mixed_policies", mixed_policies);
  ]

let bad = [ ("demo_bad", demo_bad); ("demo_policy_bad", demo_policy_bad) ]
let all = good @ bad
let find name = List.assoc_opt name all
