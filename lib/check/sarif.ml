module D = Diagnostic
module J = Rthv_obs.Json

let version = "2.1.0"
let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

(* The static rules and the trace invariants share one driver: a SARIF
   result's ruleIndex must resolve inside the run's single rule table, and
   the CLI can emit both kinds of finding in one report. *)
let rules = Lint.rules @ Trace_oracle.invariants

let level_of = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let rule_to_json (code, description) =
  J.Obj
    [
      ("id", J.String code);
      ("shortDescription", J.Obj [ ("text", J.String description) ]);
    ]

let rule_index code =
  let rec find i = function
    | [] -> None
    | (c, _) :: _ when c = code -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 rules

let result_to_json ?scenario ((d : D.t), count) =
  let qualified =
    match scenario with
    | Some s -> s ^ "/" ^ d.D.loc
    | None -> d.D.loc
  in
  let message =
    match d.D.hint with
    | Some hint -> d.D.message ^ "  hint: " ^ hint
    | None -> d.D.message
  in
  J.Obj
    ([ ("ruleId", J.String d.D.code) ]
    @ (match rule_index d.D.code with
      | Some i -> [ ("ruleIndex", J.Int i) ]
      | None -> [])
    @ [
        ("level", J.String (level_of d.D.severity));
        ("message", J.Obj [ ("text", J.String message) ]);
        ( "locations",
          J.List
            [
              J.Obj
                [
                  ( "logicalLocations",
                    J.List
                      [
                        J.Obj
                          [
                            ("name", J.String d.D.loc);
                            ("fullyQualifiedName", J.String qualified);
                          ];
                      ] );
                ];
            ] );
      ]
    @ if count > 1 then [ ("occurrenceCount", J.Int count) ] else [])

(* [findings] pairs an optional scenario name with its diagnostics; one
   SARIF run covers them all. *)
let to_json findings =
  let results =
    List.concat_map
      (fun (scenario, diags) ->
        List.map (result_to_json ?scenario) (D.dedupe diags))
      findings
  in
  J.Obj
    [
      ("$schema", J.String schema_uri);
      ("version", J.String version);
      ( "runs",
        J.List
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.String "rthv_lint");
                            ("version", J.String "1.0.0");
                            ( "informationUri",
                              J.String
                                "https://github.com/rthv/rthv#static-analysis"
                            );
                            ("rules", J.List (List.map rule_to_json rules));
                          ] );
                    ] );
                ("results", J.List results);
              ];
          ] );
    ]

let to_string findings = J.to_string (to_json findings)
