(** Opt-in simulator auditing.

    Installing the hook makes every {!Rthv_core.Hyp_sim} run record a trace
    (if the caller did not already attach one) and replay it through
    {!Trace_oracle} when the run finishes.  Error-severity findings raise
    {!Audit_failure}, so an entire test suite can run audited by installing
    the hook once in its main. *)

exception Audit_failure of Diagnostic.t list
(** Raised (by the default [fail]) when an audited run violates a trace
    invariant.  A human-readable printer is registered with
    {!Printexc.register_printer}. *)

val install :
  ?fail:(Diagnostic.t list -> unit) ->
  ?warn:(Diagnostic.t list -> unit) ->
  unit ->
  unit
(** Install the audit hook.  After every simulator run the trace is audited
    against the run's configuration; if any Error-severity diagnostics are
    found, [fail] is called with the full (sorted) list.  The default [fail]
    raises {!Audit_failure}.

    Runs with no errors but Warning-severity findings — notably [RTHV107],
    the ring buffer dropped entries so the invariant audit was skipped —
    call [warn] with just the warnings.  The default [warn] prints them to
    stderr; pass [~warn:(fun _ -> ())] to silence, or a collector to
    assert on them in tests. *)

val uninstall : unit -> unit

val installed : unit -> bool
