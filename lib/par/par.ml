type pool = { pool_jobs : int }

let jobs t = t.pool_jobs

let create_exn name jobs =
  if jobs < 1 then invalid_arg (name ^ ": jobs must be >= 1");
  { pool_jobs = jobs }

let sequential = { pool_jobs = 1 }

(* Set while executing inside a sweep worker: nested sweeps run sequentially
   so the live domain count stays bounded by the outermost pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let override_jobs = ref None

let env_jobs () =
  match Sys.getenv_opt "RTHV_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  match !override_jobs with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_default_jobs n =
  ignore (create_exn "Par.set_default_jobs" n : pool);
  override_jobs := Some n

let create ?jobs () =
  match jobs with
  | Some n -> create_exn "Par.create" n
  | None -> { pool_jobs = default_jobs () }

let default_pool () = { pool_jobs = default_jobs () }

let derive_seed ~base ~index = base + index

let resolve = function Some pool -> pool | None -> default_pool ()

(* Core fan-out: compute [f i] for i in [0, n), each index exactly once, into
   a slot array.  Workers claim contiguous chunks off an atomic cursor;
   which domain computes an index is the only scheduling freedom, and it is
   unobservable for per-index pure tasks.  All slots are filled before the
   join, so the post-join scan re-raises the lowest-index failure
   deterministically. *)
let run_tasks ~jobs n f =
  (* Never run more domains than the hardware can schedule: an oversized
     --jobs (or RTHV_JOBS) on a small machine would make the domains thrash
     one core and the "parallel" sweep run slower than the sequential path.
     The clamp is unobservable in the results — which domain computes an
     index is already unspecified. *)
  let jobs = Stdlib.min jobs (Domain.recommended_domain_count ()) in
  let results = Array.make n None in
  let chunk = Stdlib.max 1 (n / (jobs * 8)) in
  let cursor = Atomic.make 0 in
  let work () =
    let continue = ref true in
    while !continue do
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo >= n then continue := false
      else
        for i = lo to Stdlib.min n (lo + chunk) - 1 do
          results.(i) <-
            Some
              (match f i with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        done
    done
  in
  let worker () =
    Domain.DLS.set in_worker true;
    work ()
  in
  let spawned =
    Array.init (Stdlib.min jobs n - 1) (fun _ -> Domain.spawn worker)
  in
  (* The caller participates as a worker; flag it so tasks that sweep again
     stay sequential inside their slot. *)
  Domain.DLS.set in_worker true;
  work ();
  Domain.DLS.set in_worker false;
  Array.iter Domain.join spawned;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let effective_jobs pool =
  Stdlib.min pool.pool_jobs (Domain.recommended_domain_count ())

(* The pool is only worth entering when it can actually run more than one
   domain: on a machine where the hardware clamp reduces it to a single
   worker the fan-out path would pay its slot array, atomic cursor and
   per-result boxing for zero parallelism — the exact "parallel slower
   than sequential" regression the sweep benchmark gates on. *)
let parallel pool n =
  effective_jobs pool > 1 && n > 1 && not (Domain.DLS.get in_worker)

module Registry = Rthv_obs.Registry
module Recorder = Rthv_obs.Recorder
module Sink = Rthv_obs.Sink
module Prof = Rthv_obs.Prof

(* Per-task metric isolation: task [i] records into its own registry
   through a domain-locally installed recorder sink, and the registries are
   folded into [into] in task-index order once every task has finished.
   The fold structure is identical at every job count — sequential included
   — so the merged registry's exposition output is byte-identical whatever
   [--jobs] says. *)
let with_metrics metrics n task =
  match metrics with
  | None -> (task, ignore)
  | Some into ->
      let regs = Array.init n (fun _ -> Registry.create ()) in
      let task' i =
        let recorder = Recorder.create ~registry:regs.(i) () in
        Sink.with_sink (Recorder.sink recorder) (fun () -> task i)
      in
      let finish () = Array.iter (fun reg -> Registry.merge ~into reg) regs in
      (task', finish)

(* Same scheme for phase profiles: task [i] runs under its own spawned
   profiler instance, absorbed into [into] in task-index order.  [absorb]
   merges by phase path, so the aggregate tree is independent of which
   domain ran which task. *)
let with_profile profile n task =
  match profile with
  | None -> (task, ignore)
  | Some into ->
      let profs = Array.init n (fun _ -> Prof.spawn into) in
      let task' i = Prof.with_profiler profs.(i) (fun () -> task i) in
      let finish () = Array.iter (fun p -> Prof.absorb ~into p) profs in
      (task', finish)

let instrumented metrics profile n task =
  let task, finish_metrics = with_metrics metrics n task in
  let task, finish_profile = with_profile profile n task in
  ( task,
    fun () ->
      finish_metrics ();
      finish_profile () )

(* Index order 0..n-1 guaranteed (List.init's evaluation order is not). *)
let build_in_order n task =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (task i :: acc) in
  go 0 []

let run ?metrics ?profile pool n task =
  let task, finish = instrumented metrics profile n task in
  let out =
    if not (parallel pool n) then build_in_order n task
    else Array.to_list (run_tasks ~jobs:pool.pool_jobs n task)
  in
  finish ();
  out

let plain metrics profile = Option.is_none metrics && Option.is_none profile

let mapi ?pool ?metrics ?profile f xs =
  let pool = resolve pool in
  let n = List.length xs in
  if plain metrics profile && not (parallel pool n) then List.mapi f xs
  else begin
    let input = Array.of_list xs in
    run ?metrics ?profile pool n (fun i -> f i input.(i))
  end

let map ?pool ?metrics ?profile f xs =
  mapi ?pool ?metrics ?profile (fun _ x -> f x) xs

let init ?pool ?metrics ?profile n f =
  if n < 0 then invalid_arg "Par.init";
  let pool = resolve pool in
  if plain metrics profile && not (parallel pool n) then List.init n f
  else run ?metrics ?profile pool n f

let map_array ?pool ?metrics ?profile f input =
  let pool = resolve pool in
  let n = Array.length input in
  if plain metrics profile && not (parallel pool n) then Array.map f input
  else Array.of_list (run ?metrics ?profile pool n (fun i -> f input.(i)))

let map_reduce ?pool ?metrics ?profile ~map:f ~reduce ~init xs =
  let pool = resolve pool in
  if plain metrics profile && not (parallel pool (List.length xs)) then
    List.fold_left (fun acc x -> reduce acc (f x)) init xs
  else List.fold_left reduce init (map ~pool ?metrics ?profile f xs)
