(** Deterministic multicore sweep engine.

    The evaluation pipeline runs many {e independent} simulations (one per
    load, per seed, per phase offset, per ablation variant).  Each run is
    seeded on its own — the drivers derive the per-task seed from the task's
    {e index} in the sweep ([seed + i], see {!derive_seed}) — so a sweep can
    be sharded across CPU cores without changing a single simulated cycle.

    This module provides that sharding on raw [Domain]s, no dependencies:

    - {b Determinism.}  Results are returned in input order, each slot
      computed by exactly one worker, so for a per-index pure [f] the
      parallel result is the {e same value} as the sequential one —
      experiment output is byte-identical whatever the job count.  The only
      scheduling freedom is {e which} domain computes an index, which is
      unobservable for per-index pure tasks.
    - {b Exact sequential fallback.}  A pool with [jobs = 1] (or a
      single-element input) runs the untouched [List.map]/[List.mapi]/
      [List.init] code path in the calling domain: no domains are spawned,
      no arrays built.
    - {b Chunked claiming.}  Workers grab contiguous index chunks from an
      atomic cursor, so unbalanced tasks (a 1 %-load run simulates ~10x
      longer than a 10 %-load run) still spread across cores.
    - {b No nested oversubscription.}  A sweep task that itself calls into
      this module runs its inner sweep sequentially; the domain count is
      bounded by the outermost pool's [jobs].

    Exceptions raised by tasks are re-raised in the caller, deterministically
    picking the lowest-index failure (with its backtrace) once all workers
    have finished.

    {b Caveat}: tasks run concurrently in separate domains, so they must not
    share mutable state.  Every simulation ([Hyp_sim.create] + [run]) is
    self-contained, and the [Rthv_obs] sink is domain-local (fresh domains
    start with the no-op sink), so a recorder installed in the calling
    domain simply does not see worker-domain runs.  To collect metrics
    {e across} a sweep, pass [?metrics]: each task then records into its own
    private registry (a recorder sink installed domain-locally for the
    task's duration), and the per-task registries are folded into the given
    registry {e in task-index order} once all tasks have finished.  The fold
    structure is identical at every job count, so the merged registry's
    exposition output is byte-identical whatever [--jobs] says.

    [?profile] applies the same scheme to phase profiles: each task runs
    under its own [Rthv_obs.Prof.spawn] of the given profiler (installed
    domain-locally for the task's duration) and the per-task trees are
    [absorb]ed into it in task-index order, merging by phase path — the
    aggregate profile is a deterministic function of the tasks, not of the
    job count. *)

type pool
(** A job-count handle.  Workers are spawned per call and joined before the
    call returns; a [pool] is cheap and holds no OS resources. *)

val create : ?jobs:int -> unit -> pool
(** [create ~jobs ()] makes a pool running at most [jobs] domains (including
    the caller, which participates as a worker).  Default: {!default_jobs}.
    At execution time the spawned-domain count is additionally clamped to
    [Domain.recommended_domain_count ()]: an oversized [jobs] on a small
    machine would thrash one core and run slower than sequential, and the
    clamp cannot change results (which domain computes an index is already
    unspecified).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : pool -> int

val effective_jobs : pool -> int
(** [jobs] after the hardware clamp: [min (jobs pool)
    (Domain.recommended_domain_count ())].  When this is [1] the pool runs
    the exact sequential code path — no slot arrays, no atomic cursor, no
    domains — so an oversized job count on a small machine cannot regress
    below the sequential wall-clock. *)

val sequential : pool
(** The [jobs = 1] pool: the exact pre-parallel code path. *)

val default_jobs : unit -> int
(** The job count used when [?pool] is omitted: the {!set_default_jobs}
    override if set, else the [RTHV_JOBS] environment variable if it parses
    to a positive integer, else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Process-wide override of {!default_jobs} (the CLIs' [--jobs] flag).
    @raise Invalid_argument if [jobs < 1]. *)

val default_pool : unit -> pool
(** A pool of {!default_jobs} workers. *)

val derive_seed : base:int -> index:int -> int
(** The sweep seed-derivation scheme: task [i] of a sweep seeded [base] uses
    [base + i] — the same arithmetic the sequential drivers have always
    used, so parallel and sequential sweeps feed identical seeds to
    identical tasks. *)

val map :
  ?pool:pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profile:Rthv_obs.Prof.t ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** Order-preserving parallel [List.map].  With [?metrics], each task's
    telemetry is captured in a private registry and deterministically
    merged (task-index order) into the given one; [?profile] does the same
    for phase profiles — see the module caveat. *)

val mapi :
  ?pool:pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profile:Rthv_obs.Prof.t ->
  (int -> 'a -> 'b) ->
  'a list ->
  'b list
(** Order-preserving parallel [List.mapi] — the workhorse for [seed + i]
    sweeps. *)

val init :
  ?pool:pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profile:Rthv_obs.Prof.t ->
  int ->
  (int -> 'a) ->
  'a list
(** Parallel [List.init].  @raise Invalid_argument on negative length. *)

val map_array :
  ?pool:pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profile:Rthv_obs.Prof.t ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** Order-preserving parallel [Array.map]. *)

val map_reduce :
  ?pool:pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profile:Rthv_obs.Prof.t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** [map_reduce ~map ~reduce ~init xs] maps in parallel, then folds the
    results {e in input order} in the calling domain — associativity of
    [reduce] is not required and the result equals the sequential
    [fold_left (fun acc x -> reduce acc (map x)) init xs]. *)
