(** Top-level facade: everything {!Rthv_core.Rthv} re-exports, plus the
    static configuration analyzer and the trace-invariant oracle of
    [rthv.check].

    [open Rthv] (or [module R = Rthv]) gives one namespace over the whole
    reproduction:

    {[
      let diags = Rthv.Lint.analyze config in
      Rthv.Audit_hook.install ();          (* every sim run is now audited *)
      let sim = Rthv.Hyp_sim.create config in
      Rthv.Hyp_sim.run sim
    ]} *)

include Rthv_core.Rthv

module Diagnostic = Rthv_check.Diagnostic
module Lint = Rthv_check.Lint
module Trace_oracle = Rthv_check.Trace_oracle
module Audit_hook = Rthv_check.Audit_hook
module Scenarios = Rthv_check.Scenarios
