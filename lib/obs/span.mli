(** Per-IRQ causal spans.

    One span per interrupt instance: the six timestamps (in microseconds of
    simulated time) from hardware assertion to bottom-handler completion,
    plus the identity of the source and the handling class the monitor
    chose.  Consecutive timestamp differences are the named latency
    components of the paper's decomposition (eq. 2):

    {v
    raised --(top_wait)--> top_handler --(decision_wait)--> decision
           --(queue_wait | slot_wait | interposed_wait)--> bottom_handler
           --> completed
    v} *)

type t = {
  sp_irq : int;  (** Per-run unique instance id (simulator IRQ counter). *)
  sp_line : int;
  sp_source : string;
  sp_class : string;  (** ["direct"], ["interposed"] or ["delayed"]. *)
  sp_arrival : float;
  sp_top_start : float;
  sp_top_end : float;
  sp_decision : float;
      (** When the handling class was fixed: the monitor verdict for
          monitored lines, the post-top-handler classification otherwise. *)
  sp_bh_start : float;  (** First cycle of bottom-half execution. *)
  sp_completion : float;
}

val latency : t -> float
(** End-to-end [completion - arrival]; equals the sum of {!components}. *)

val wait_component : string -> string
(** The class-specific name of the dispatch-wait component:
    [interposed_wait], [slot_wait] or [queue_wait]. *)

val component_names : t -> string list
(** The five component names of this span, in causal order. *)

val all_component_names : string list
(** Every component name that can occur, in causal order (the three
    class-specific waits are mutually exclusive within one span). *)

val components : t -> (string * float) list
(** [(name, duration_us)] per component, in causal order; durations sum
    exactly to {!latency}. *)

val valid : t -> bool
(** Timestamps are monotone, i.e. every component is non-negative. *)

val pp : Format.formatter -> t -> unit
