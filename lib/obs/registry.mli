(** Metrics registry.

    Counters, gauges, fixed-bin histograms and streaming-quantile summaries
    keyed by name + {!Labels}.  Registration is idempotent — asking for the
    same (name, labels) series again returns the existing instance — and a
    kind clash raises.  Snapshots and the text / JSON / Prometheus
    exposition renderings read the live values without stopping the
    writers. *)

type t

val create : unit -> t

(** {2 Registration / update}

    Each accessor creates the series on first use.
    @raise Invalid_argument if the series exists with a different kind. *)

val counter : t -> ?labels:Labels.t -> string -> int ref
val incr : t -> ?labels:Labels.t -> string -> int -> unit

val gauge : t -> ?labels:Labels.t -> string -> float ref
val set_gauge : t -> ?labels:Labels.t -> string -> float -> unit

val histogram :
  t -> ?labels:Labels.t -> ?bounds:float array -> string -> Metric.histogram
(** [bounds] defaults to {!Metric.default_latency_bounds} and only applies
    on first registration. *)

val observe : t -> ?labels:Labels.t -> ?bounds:float array -> string -> float -> unit

val summary : t -> ?labels:Labels.t -> ?quantiles:float list -> string -> Quantile.t
val observe_summary : t -> ?labels:Labels.t -> string -> float -> unit

val find : t -> ?labels:Labels.t -> string -> Metric.value option

val set_help : t -> string -> string -> unit
(** [set_help t name doc] documents the metric family [name] (all series
    sharing the name): the Prometheus exposition emits it as the family's
    [# HELP] line, newline/backslash-escaped.  Idempotent; the last call
    wins; the empty string is ignored. *)

val help : t -> string -> string option

(** {2 Snapshot and export} *)

type row = { name : string; labels : Labels.t; value : Metric.value }

val snapshot : t -> row list
(** Sorted by name, then labels. *)

val cardinality : t -> int

val merge : into:t -> t -> unit
(** [merge ~into src] folds every series of [src] into [into] (leaving
    [src] untouched): counters add, gauges take the source value
    (last-writer when folding in order), histogram bins add (bounds must
    match), summaries merge deterministically via {!Quantile.merge}.
    Series missing from [into] are deep-copied in, and help texts missing
    from [into] are adopted.  Merging per-task registries in task-index
    order yields the same exposition bytes at any worker count — see
    {!Rthv_par.Par}.
    @raise Invalid_argument on a kind clash or histogram-bound mismatch. *)

val pp : Format.formatter -> t -> unit
(** Human-readable text dump, one series per line. *)

val to_json : t -> Json.t
(** An array of objects: [{"name", "labels", "kind", ...kind fields}]. *)

val to_prometheus : t -> string
(** Prometheus exposition text format: [# HELP] (for families documented
    via {!set_help}) and [# TYPE] comments, histogram
    [_bucket]/[_sum]/[_count] expansion, summary [quantile] labels. *)
