(** Metric label sets.

    A label set is a small list of [key = value] pairs identifying one time
    series of a metric (partition, source, verdict, ...).  Construction
    canonicalises the order so that structurally equal sets compare equal
    and hash equal, whatever order the caller wrote them in. *)

type t = private (string * string) list

val empty : t

val v : (string * string) list -> t
(** Canonicalise: sort by key.  @raise Invalid_argument on a duplicate key
    or an empty key. *)

val add : string -> string -> t -> t

val of_int : string -> int -> t
(** [of_int k i] is [v [ (k, string_of_int i) ]] — the common
    partition/line label. *)

val to_list : t -> (string * string) list
val is_empty : t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders [{k=v,k=v}]; nothing when empty. *)

val to_prometheus : t -> string
(** Renders [{k="v",k="v"}] with Prometheus string escaping; [""] when
    empty. *)
