type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/Infinity; null is the conventional stand-in. *)
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

(* --- parser ------------------------------------------------------------- *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> fail (Printf.sprintf "expected %c, found %c" c x)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = input.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = input.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                loop ()
            | 'n' ->
                Buffer.add_char buf '\n';
                loop ()
            | 'r' ->
                Buffer.add_char buf '\r';
                loop ()
            | 't' ->
                Buffer.add_char buf '\t';
                loop ()
            | 'b' ->
                Buffer.add_char buf '\b';
                loop ()
            | 'f' ->
                Buffer.add_char buf '\012';
                loop ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub input !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "invalid \\u escape"
                | Some code when code < 0x80 ->
                    Buffer.add_char buf (Char.chr code)
                | Some _ ->
                    (* Non-ASCII escapes don't occur in our own output; a
                       replacement keeps the parser total. *)
                    Buffer.add_char buf '?');
                loop ()
            | c -> fail (Printf.sprintf "invalid escape \\%c" c))
        | c when Char.code c < 0x20 -> fail "unescaped control character"
        | c ->
            Buffer.add_char buf c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    (match peek () with
    | Some '.' ->
        is_float := true;
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Out of int range: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, value) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (value :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    value
  with
  | value -> Ok value
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
