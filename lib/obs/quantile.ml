(* The P² algorithm, Jain & Chlamtac, "The P² algorithm for dynamic
   calculation of quantiles and histograms without storing observations",
   CACM 28(10), 1985.  Five markers track the minimum, the p/2, p and
   (1+p)/2 quantiles and the maximum; marker heights are adjusted with a
   piecewise-parabolic (P²) interpolation as observations stream in. *)

type estimator = {
  p : float;
  q : float array;  (* marker heights *)
  n : int array;  (* marker positions, 1-based *)
  n' : float array;  (* desired marker positions *)
  dn : float array;  (* desired position increments *)
  mutable count : int;
}

let estimator p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Quantile.estimator: p must be in (0, 1)";
  {
    p;
    q = Array.make 5 0.;
    n = [| 1; 2; 3; 4; 5 |];
    n' = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
    dn = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |];
    count = 0;
  }

let parabolic t i d =
  let q = t.q and n = t.n in
  let fi = float_of_int in
  q.(i)
  +. d
     /. fi (n.(i + 1) - n.(i - 1))
     *. (((fi (n.(i) - n.(i - 1)) +. d)
          *. (q.(i + 1) -. q.(i))
          /. fi (n.(i + 1) - n.(i)))
        +. ((fi (n.(i + 1) - n.(i)) -. d)
           *. (q.(i) -. q.(i - 1))
           /. fi (n.(i) - n.(i - 1))))

let linear t i d =
  let di = int_of_float d in
  t.q.(i)
  +. d
     *. (t.q.(i + di) -. t.q.(i))
     /. float_of_int (t.n.(i + di) - t.n.(i))

let add t x =
  t.count <- t.count + 1;
  if t.count <= 5 then begin
    t.q.(t.count - 1) <- x;
    if t.count = 5 then Array.sort Float.compare t.q
  end
  else begin
    (* Find the cell k with q.(k) <= x < q.(k+1), clamping the extremes. *)
    let k =
      if x < t.q.(0) then begin
        t.q.(0) <- x;
        0
      end
      else if x >= t.q.(4) then begin
        t.q.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < t.q.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      t.n.(i) <- t.n.(i) + 1
    done;
    for i = 0 to 4 do
      t.n'.(i) <- t.n'.(i) +. t.dn.(i)
    done;
    (* Adjust the three interior markers if they drifted off their desired
       positions by one or more. *)
    for i = 1 to 3 do
      let d = t.n'.(i) -. float_of_int t.n.(i) in
      if
        (d >= 1. && t.n.(i + 1) - t.n.(i) > 1)
        || (d <= -1. && t.n.(i - 1) - t.n.(i) < -1)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let candidate = parabolic t i d in
        let q' =
          if t.q.(i - 1) < candidate && candidate < t.q.(i + 1) then candidate
          else linear t i d
        in
        t.q.(i) <- q';
        t.n.(i) <- t.n.(i) + int_of_float d
      end
    done
  end

let exact_small t =
  (* Fewer than five observations: nearest-rank on the stored values. *)
  let sorted = Array.sub t.q 0 t.count in
  Array.sort Float.compare sorted;
  let rank =
    int_of_float (Float.ceil (t.p *. float_of_int t.count))
  in
  sorted.(Stdlib.max 0 (Stdlib.min (t.count - 1) (rank - 1)))

let estimate t =
  if t.count = 0 then None
  else if t.count < 5 then Some (exact_small t)
  else Some t.q.(2)

let observations t = t.count

(* --- digest ------------------------------------------------------------- *)

type t = {
  estimators : (float * estimator) list;  (* ascending in p *)
  mutable d_count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let default_quantiles = [ 0.5; 0.95; 0.99; 0.999 ]

let create ?(quantiles = default_quantiles) () =
  if quantiles = [] then invalid_arg "Quantile.create: no quantiles";
  let estimators =
    List.map
      (fun p -> (p, estimator p))
      (List.sort_uniq Float.compare quantiles)
  in
  {
    estimators;
    d_count = 0;
    sum = 0.;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
  }

let observe t x =
  t.d_count <- t.d_count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  List.iter (fun (_, e) -> add e x) t.estimators

let count t = t.d_count
let mean t = if t.d_count = 0 then None else Some (t.sum /. float_of_int t.d_count)
let min_value t = if t.d_count = 0 then None else Some t.min_v
let max_value t = if t.d_count = 0 then None else Some t.max_v

let quantile t p =
  match List.assoc_opt p t.estimators with
  | None -> None
  | Some e -> estimate e

let quantiles t =
  if t.d_count = 0 then []
  else
    List.filter_map
      (fun (p, e) -> Option.map (fun v -> (p, v)) (estimate e))
      t.estimators

(* --- merge -------------------------------------------------------------- *)

let copy_estimator e =
  {
    e with
    q = Array.copy e.q;
    n = Array.copy e.n;
    n' = Array.copy e.n';
    dn = Array.copy e.dn;
  }

(* The P² state is lossy, so a merge cannot be exact in general.  Below five
   observations the q array still holds the raw samples; past that the five
   markers are a piecewise-linear sketch of the empirical CDF, and we
   reconstruct one pseudo-sample per rank from it.  Replaying those into a
   fresh estimator is deterministic (no clocks, no randomness), exact when
   the combined count fits in the small-sample regime, and keeps min/max
   exact because markers 0 and 4 are the true extremes. *)
let pseudo_samples e =
  Array.init e.count (fun i ->
      let r = i + 1 in
      let rec seg j = if j >= 3 || r <= e.n.(j + 1) then j else seg (j + 1) in
      let j = seg 0 in
      let n0 = e.n.(j) and n1 = e.n.(j + 1) in
      if n1 = n0 then e.q.(j)
      else
        let frac = float_of_int (r - n0) /. float_of_int (n1 - n0) in
        e.q.(j) +. (frac *. (e.q.(j + 1) -. e.q.(j))))

let samples_of e =
  if e.count <= 5 then Array.sub e.q 0 e.count else pseudo_samples e

let merge_estimator p ea eb =
  if ea.count = 0 then copy_estimator eb
  else if eb.count = 0 then copy_estimator ea
  else begin
    let m = estimator p in
    Array.iter (add m) (samples_of ea);
    Array.iter (add m) (samples_of eb);
    m
  end

let copy t =
  {
    t with
    estimators = List.map (fun (p, e) -> (p, copy_estimator e)) t.estimators;
  }

let merge a b =
  if List.map fst a.estimators <> List.map fst b.estimators then
    invalid_arg "Quantile.merge: tracked quantile sets differ";
  {
    estimators =
      List.map2
        (fun (p, ea) (_, eb) -> (p, merge_estimator p ea eb))
        a.estimators b.estimators;
    d_count = a.d_count + b.d_count;
    sum = a.sum +. b.sum;
    min_v = Float.min a.min_v b.min_v;
    max_v = Float.max a.max_v b.max_v;
  }

let pp ppf t =
  if t.d_count = 0 then Format.fprintf ppf "n=0"
  else begin
    Format.fprintf ppf "n=%d mean=%.1f min=%.1f" t.d_count
      (Option.get (mean t))
      t.min_v;
    List.iter
      (fun (p, v) -> Format.fprintf ppf " p%g=%.1f" (p *. 100.) v)
      (quantiles t);
    Format.fprintf ppf " max=%.1f" t.max_v
  end
