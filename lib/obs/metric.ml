type histogram = {
  h_bounds : float array;
  counts : int array;  (* length bounds + 1; last is the overflow bucket *)
  mutable h_sum : float;
  mutable h_total : int;
}

let histogram ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metric.histogram: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metric.histogram: bounds must be strictly increasing"
  done;
  {
    h_bounds = Array.copy bounds;
    counts = Array.make (n + 1) 0;
    h_sum = 0.;
    h_total = 0;
  }

(* 1 µs to 100 ms, roughly 1-2-5 per decade. *)
let default_latency_bounds =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.;
    10_000.; 20_000.; 50_000.; 100_000.;
  |]

let observe h x =
  let n = Array.length h.h_bounds in
  let rec find i = if i >= n || x <= h.h_bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_total <- h.h_total + 1

let bounds h = Array.copy h.h_bounds
let bucket_counts h = Array.copy h.counts

let cumulative h =
  let acc = ref 0 in
  Array.to_list
    (Array.mapi
       (fun i bound ->
         acc := !acc + h.counts.(i);
         (bound, !acc))
       h.h_bounds)

let total h = h.h_total
let sum h = h.h_sum

let copy h =
  {
    h_bounds = Array.copy h.h_bounds;
    counts = Array.copy h.counts;
    h_sum = h.h_sum;
    h_total = h.h_total;
  }

let merge a b =
  if a.h_bounds <> b.h_bounds then
    invalid_arg "Metric.merge: histogram bucket bounds differ";
  {
    h_bounds = Array.copy a.h_bounds;
    counts = Array.map2 ( + ) a.counts b.counts;
    h_sum = a.h_sum +. b.h_sum;
    h_total = a.h_total + b.h_total;
  }

type value =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram
  | Summary of Quantile.t

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Summary _ -> "summary"

let copy_value = function
  | Counter r -> Counter (ref !r)
  | Gauge r -> Gauge (ref !r)
  | Histogram h -> Histogram (copy h)
  | Summary q -> Summary (Quantile.copy q)
