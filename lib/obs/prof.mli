(** Hierarchical phase profiler.

    A profiler instance aggregates a calling-context tree: each node is a
    phase (an interned name) reached through a unique chain of enclosing
    phases, and accumulates call count, wall-clock nanoseconds and minor-heap
    words for every [enter]/[leave] pair executed while it is installed.

    The design constraints mirror {!Sink}:

    - {b Zero cost when disabled.}  Instrumentation sites hold the instance
      in a local (hoisted out of the hot loop via {!installed}, which
      returns {!disabled} when nothing is installed) and [enter]/[leave]
      compile to one load and one predictable branch — no allocation, no
      clock read.
    - {b Allocation-free when enabled}, at steady state: node storage is
      struct-of-arrays (int/float arrays), so scope bookkeeping allocates
      only when a phase chain is seen for the first time (node creation) or
      the stack deepens past its high-water mark.  The unavoidable per-scope
      boxing of the clock value is measured once at {!create} and subtracted
      from the attributed words, so reported allocation is the user code's
      own.
    - {b Deterministic merge.}  {!absorb} folds one instance into another by
      phase path, independent of encounter order, so per-worker profiles
      merged in task-index order are byte-identical at any job count (see
      [Rthv_par.Par]'s [?profile]).

    Phase names are interned process-wide: {!phase} is called once at module
    initialisation and the returned id is a dense int usable from any
    domain. *)

type phase = private int
(** An interned phase name. *)

val phase : string -> phase
(** Intern a phase name (thread-safe; idempotent per name). *)

val phase_name : phase -> string

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh, enabled profiler.  [clock] returns monotonic nanoseconds and
    defaults to the process monotonic clock; tests substitute a fake.  The
    per-scope allocation overhead of the clock itself is calibrated here and
    subtracted from attributed words. *)

val disabled : t
(** The shared inert instance: [enter]/[leave]/[span] on it are no-ops.
    This is what {!installed} returns when no profiler is installed, so hot
    loops can hold an instance unconditionally. *)

val enabled : t -> bool

val spawn : t -> t
(** A fresh enabled instance sharing [t]'s clock (and calibration inputs) —
    used for per-task profiles that are later {!absorb}ed into [t]. *)

(** {2 Domain-local installation}

    Like {!Sink}, the installed profiler is domain-local: installing on a
    worker domain affects only that domain, and fresh domains start with
    {!disabled}. *)

val install : t -> unit
val uninstall : unit -> unit

val installed : unit -> t
(** The profiler installed on this domain, or {!disabled}.  Hot loops call
    this once per run and stash the result. *)

val with_profiler : t -> (unit -> 'a) -> 'a
(** Install for the duration of the callback, restoring the previous
    instance (even on exceptions). *)

(** {2 Scopes} *)

val enter : t -> phase -> unit
val leave : t -> unit
(** [enter]/[leave] must nest properly.  [leave] on an empty stack is a
    no-op (so a recorder that missed the opening [enter] cannot crash the
    host). *)

val span : t -> phase -> (unit -> 'a) -> 'a
(** [span t ph f] = [enter t ph; f ()] with [leave] on both return and
    exception. *)

val depth : t -> int
(** Current open-scope depth (0 at rest). *)

(** {2 Snapshots} *)

type row = {
  r_path : string;  (** ["run/dispatch/boundary"] — phase chain from root. *)
  r_name : string;  (** Leaf phase name. *)
  r_depth : int;  (** Chain length; top-level phases are depth 1. *)
  r_calls : int;
  r_total_ns : float;  (** Inclusive wall-clock. *)
  r_self_ns : float;  (** Exclusive: total minus instrumented children. *)
  r_words : float;  (** Inclusive minor words (clock overhead subtracted). *)
  r_self_words : float;
}

val rows : t -> row list
(** Preorder over the context tree, children sorted by phase name — a
    deterministic function of the aggregate, not of encounter order. *)

val reset : t -> unit
(** Zero all accumulators and drop the tree (keeps clock + calibration). *)

val absorb : into:t -> t -> unit
(** Merge [t]'s tree into [into] by phase path, summing accumulators.
    [t] is left untouched. *)

(** {2 Rendering} *)

val to_json : t -> Json.t
(** [{"schema":"rthv-profile/1","rows":[...]}] with one object per {!rows}
    entry. *)

val of_json : Json.t -> (row list, string) result
(** Re-read the rows of a [rthv-profile/1] document (for diffing and the
    bench gate). *)

val pp_table : Format.formatter -> t -> unit
(** Hot-phase table (tree-indented, sorted children) followed by an
    allocation-attribution waterfall over self-words. *)

val to_chrome : t -> Json.t
(** Chrome Trace Event JSON: the aggregate tree rendered as one synthetic
    timeline of nested complete ("X") slices, loadable in Perfetto. *)
