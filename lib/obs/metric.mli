(** Metric value kinds.

    The registry stores one of these per (name, labels) series: a
    monotonically increasing counter, a settable gauge, a fixed-bin
    histogram, or a streaming-quantile summary. *)

(** {2 Fixed-bin histogram} *)

type histogram

val histogram : bounds:float array -> histogram
(** [bounds] are the inclusive upper bounds of the finite buckets, strictly
    increasing; an implicit overflow bucket catches everything above the
    last bound.  @raise Invalid_argument on an empty or non-increasing
    array. *)

val default_latency_bounds : float array
(** Log-spaced microsecond bounds (1 µs .. 100 ms) suited to interrupt
    latencies. *)

val observe : histogram -> float -> unit
val bounds : histogram -> float array
val bucket_counts : histogram -> int array
(** Per-bucket (non-cumulative) counts; one longer than {!bounds}, the last
    entry being the overflow bucket. *)

val cumulative : histogram -> (float * int) list
(** [(upper_bound, cumulative_count)] pairs per finite bucket — the
    Prometheus [le] view, without the trailing [+Inf] bucket (that is
    {!total}). *)

val total : histogram -> int
val sum : histogram -> float

val copy : histogram -> histogram
(** Independent deep copy. *)

val merge : histogram -> histogram -> histogram
(** Fresh histogram with bucket counts, sum and total added (exact and
    associative; neither input is mutated).
    @raise Invalid_argument if the bucket bounds differ. *)

(** {2 The stored value} *)

type value =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram
  | Summary of Quantile.t

val kind_name : value -> string

val copy_value : value -> value
(** Independent deep copy of any stored value. *)
