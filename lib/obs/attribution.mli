(** Latency attribution over per-IRQ spans.

    Streams {!Span.t} values into per-(source, handling-class) waterfalls:
    one {!Quantile} digest per latency component plus the end-to-end
    distribution and the single worst span.  Memory is O(groups), not
    O(IRQs).  Feed it by installing {!sink} (alone, or combined with a
    {!Recorder} via {!Sink.tee}) around a simulation, then read {!rows}. *)

type t

val create : unit -> t

val record : t -> Span.t -> unit

val sink : t -> Sink.t
(** A sink that captures only spans (counters/gauges/observations pass
    through to nothing). *)

type stats = { st_p50 : float; st_p99 : float; st_max : float; st_mean : float }

type row = {
  r_source : string;
  r_class : string;
  r_count : int;
  r_latency : stats;
  r_components : (string * stats) list;
      (** Per-component stats in causal order; only components that
          occurred in this group appear. *)
  r_worst : Span.t option;
      (** The span with the maximum end-to-end latency. *)
}

val rows : t -> row list
(** Sorted by source name, then class. *)

val total_spans : t -> int
