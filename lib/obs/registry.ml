type key = { k_name : string; k_labels : Labels.t }

(* [help] maps metric name (not series key: HELP is per metric family in
   the exposition format) to its documentation string. *)
type t = {
  table : (key, Metric.value) Hashtbl.t;
  help : (string, string) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64; help = Hashtbl.create 16 }

let set_help t name doc = if doc <> "" then Hashtbl.replace t.help name doc
let help t name = Hashtbl.find_opt t.help name

let get_or_register t ~labels name ~make ~select =
  let key = { k_name = name; k_labels = labels } in
  match Hashtbl.find_opt t.table key with
  | Some value -> (
      match select value with
      | Some v -> v
      | None ->
          invalid_arg
            (Format.asprintf "Registry: %s%a is a %s, not the requested kind"
               name Labels.pp labels (Metric.kind_name value)))
  | None ->
      let value = make () in
      Hashtbl.add t.table key value;
      match select value with
      | Some v -> v
      | None -> assert false

let counter t ?(labels = Labels.empty) name =
  get_or_register t ~labels name
    ~make:(fun () -> Metric.Counter (ref 0))
    ~select:(function Metric.Counter r -> Some r | _ -> None)

let incr t ?labels name n =
  let r = counter t ?labels name in
  r := !r + n

let gauge t ?(labels = Labels.empty) name =
  get_or_register t ~labels name
    ~make:(fun () -> Metric.Gauge (ref 0.))
    ~select:(function Metric.Gauge r -> Some r | _ -> None)

let set_gauge t ?labels name v = gauge t ?labels name := v

let histogram t ?(labels = Labels.empty)
    ?(bounds = Metric.default_latency_bounds) name =
  get_or_register t ~labels name
    ~make:(fun () -> Metric.Histogram (Metric.histogram ~bounds))
    ~select:(function Metric.Histogram h -> Some h | _ -> None)

let observe t ?labels ?bounds name x =
  Metric.observe (histogram t ?labels ?bounds name) x

let summary t ?(labels = Labels.empty) ?quantiles name =
  get_or_register t ~labels name
    ~make:(fun () -> Metric.Summary (Quantile.create ?quantiles ()))
    ~select:(function Metric.Summary q -> Some q | _ -> None)

let observe_summary t ?labels name x =
  Quantile.observe (summary t ?labels name) x

let find t ?(labels = Labels.empty) name =
  Hashtbl.find_opt t.table { k_name = name; k_labels = labels }

type row = { name : string; labels : Labels.t; value : Metric.value }

let snapshot t =
  Hashtbl.fold
    (fun key value acc ->
      { name = key.k_name; labels = key.k_labels; value } :: acc)
    t.table []
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 -> Labels.compare a.labels b.labels
         | c -> c)

let cardinality t = Hashtbl.length t.table

(* Deterministic fold of [src] into [into]: counters and histogram bins
   add, gauges take the source's value (so folding per-task registries in
   input order leaves the last writer by task index), summaries merge via
   {!Quantile.merge}.  Iterating the sorted snapshot — not the hash table —
   keeps the result independent of insertion order on the source side. *)
let merge ~into src =
  Hashtbl.iter
    (fun name doc ->
      if not (Hashtbl.mem into.help name) then Hashtbl.add into.help name doc)
    src.help;
  List.iter
    (fun { name; labels; value } ->
      let key = { k_name = name; k_labels = labels } in
      match Hashtbl.find_opt into.table key with
      | None -> Hashtbl.add into.table key (Metric.copy_value value)
      | Some existing -> (
          match (existing, value) with
          | Metric.Counter d, Metric.Counter s -> d := !d + !s
          | Metric.Gauge d, Metric.Gauge s -> d := !s
          | Metric.Histogram d, Metric.Histogram s ->
              Hashtbl.replace into.table key
                (Metric.Histogram (Metric.merge d s))
          | Metric.Summary d, Metric.Summary s ->
              Hashtbl.replace into.table key
                (Metric.Summary (Quantile.merge d s))
          | d, s ->
              invalid_arg
                (Format.asprintf
                   "Registry.merge: %s%a is a %s here but a %s in the source"
                   name Labels.pp labels (Metric.kind_name d)
                   (Metric.kind_name s))))
    (snapshot src)

let pp ppf t =
  List.iter
    (fun { name; labels; value } ->
      match value with
      | Metric.Counter r ->
          Format.fprintf ppf "%s%a %d@." name Labels.pp labels !r
      | Metric.Gauge r ->
          Format.fprintf ppf "%s%a %g@." name Labels.pp labels !r
      | Metric.Histogram h ->
          Format.fprintf ppf "%s%a count=%d sum=%g@." name Labels.pp labels
            (Metric.total h) (Metric.sum h)
      | Metric.Summary q ->
          Format.fprintf ppf "%s%a %a@." name Labels.pp labels Quantile.pp q)
    (snapshot t)

let labels_json labels =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.String v)) (Labels.to_list labels))

let row_json { name; labels; value } =
  let base = [ ("name", Json.String name); ("labels", labels_json labels) ] in
  let rest =
    match value with
    | Metric.Counter r ->
        [ ("kind", Json.String "counter"); ("value", Json.Int !r) ]
    | Metric.Gauge r ->
        [ ("kind", Json.String "gauge"); ("value", Json.Float !r) ]
    | Metric.Histogram h ->
        [
          ("kind", Json.String "histogram");
          ("count", Json.Int (Metric.total h));
          ("sum", Json.Float (Metric.sum h));
          ( "buckets",
            Json.List
              (List.map
                 (fun (le, cum) ->
                   Json.Obj [ ("le", Json.Float le); ("count", Json.Int cum) ])
                 (Metric.cumulative h)) );
        ]
    | Metric.Summary q ->
        [
          ("kind", Json.String "summary");
          ("count", Json.Int (Quantile.count q));
          ("mean", Json.Float (Option.value ~default:0. (Quantile.mean q)));
          ("min", Json.Float (Option.value ~default:0. (Quantile.min_value q)));
          ("max", Json.Float (Option.value ~default:0. (Quantile.max_value q)));
          ( "quantiles",
            Json.Obj
              (List.map
                 (fun (p, v) -> (Printf.sprintf "%g" p, Json.Float v))
                 (Quantile.quantiles q)) );
        ]
  in
  Json.Obj (base @ rest)

let to_json t = Json.List (List.map row_json (snapshot t))

(* Prometheus exposition format.  Series of the same metric name share one
   HELP (when registered) and one TYPE comment; histograms expand into
   _bucket/_sum/_count, summaries into quantile-labelled samples plus
   _sum/_count. *)

(* HELP text escaping per the exposition format: backslash and newline. *)
let escape_help doc =
  let buf = Buffer.create (String.length doc) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    doc;
  Buffer.contents buf

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_comment name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      (match Hashtbl.find_opt t.help name with
      | Some doc ->
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name (escape_help doc))
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let number f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f
  in
  List.iter
    (fun { name; labels; value } ->
      let l = Labels.to_prometheus labels in
      match value with
      | Metric.Counter r ->
          type_comment name "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name l !r)
      | Metric.Gauge r ->
          type_comment name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name l (number !r))
      | Metric.Histogram h ->
          type_comment name "histogram";
          List.iter
            (fun (le, cum) ->
              let with_le =
                Labels.add "le" (number le) labels |> Labels.to_prometheus
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name with_le cum))
            (Metric.cumulative h);
          let inf = Labels.add "le" "+Inf" labels |> Labels.to_prometheus in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name inf (Metric.total h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name l (number (Metric.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name l (Metric.total h))
      | Metric.Summary q ->
          type_comment name "summary";
          List.iter
            (fun (p, v) ->
              let with_q =
                Labels.add "quantile" (Printf.sprintf "%g" p) labels
                |> Labels.to_prometheus
              in
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name with_q (number v)))
            (Quantile.quantiles q);
          (match Quantile.mean q with
          | Some mean ->
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" name l
                   (number (mean *. float_of_int (Quantile.count q))))
          | None -> ());
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name l (Quantile.count q)))
    (snapshot t);
  Buffer.contents buf
