(* Phase names are interned process-wide behind a mutex: [phase] runs once
   per name at module initialisation, after which the dense int id is safe
   to use from any domain (reads go through the atomic so a racing intern
   on another domain is published safely). *)

type phase = int

let intern_mutex = Mutex.create ()
let intern_names : string array Atomic.t = Atomic.make [||]

let phase name =
  Mutex.protect intern_mutex (fun () ->
      let names = Atomic.get intern_names in
      let n = Array.length names in
      let rec find i =
        if i >= n then -1
        else if String.equal names.(i) name then i
        else find (i + 1)
      in
      match find 0 with
      | -1 ->
          Atomic.set intern_names (Array.append names [| name |]);
          n
      | i -> i)

let phase_name p = (Atomic.get intern_names).(p)

(* The calling-context tree is struct-of-arrays: parallel int/float arrays
   indexed by node id, with node 0 the synthetic root.  Mixed int/float
   record fields would box every float update; flat [float array]s keep the
   enabled-path updates allocation-free.  Children hang off
   [n_first_child]/[n_sibling] (prepend order — snapshots sort by name, so
   encounter order never leaks into output). *)
type t = {
  mutable p_on : bool;
  p_clock : unit -> float;
  (* nodes *)
  mutable n_count : int;
  mutable n_phase : int array;
  mutable n_parent : int array;
  mutable n_first_child : int array;
  mutable n_sibling : int array;
  mutable n_calls : int array;
  mutable n_total_ns : float array;
  mutable n_child_ns : float array;
  mutable n_words : float array;
  mutable n_child_words : float array;
  (* open-scope stack *)
  mutable s_node : int array;
  mutable s_start_ns : float array;
  mutable s_start_words : float array;
  mutable s_child_scopes : int array;
  mutable p_depth : int;
  mutable p_cur : int;
  (* minor words allocated by one enter/leave pair itself (clock boxing);
     measured at [create] and charged against the enclosing scope. *)
  mutable p_scope_overhead_words : float;
}

let initial_nodes = 16
let initial_stack = 16

let make_raw ~on clock =
  {
    p_on = on;
    p_clock = clock;
    n_count = 1;
    n_phase = Array.make initial_nodes (-1);
    n_parent = Array.make initial_nodes (-1);
    n_first_child = Array.make initial_nodes (-1);
    n_sibling = Array.make initial_nodes (-1);
    n_calls = Array.make initial_nodes 0;
    n_total_ns = Array.make initial_nodes 0.;
    n_child_ns = Array.make initial_nodes 0.;
    n_words = Array.make initial_nodes 0.;
    n_child_words = Array.make initial_nodes 0.;
    s_node = Array.make initial_stack 0;
    s_start_ns = Array.make initial_stack 0.;
    s_start_words = Array.make initial_stack 0.;
    s_child_scopes = Array.make initial_stack 0;
    p_depth = 0;
    p_cur = 0;
    p_scope_overhead_words = 0.;
  }

let disabled = make_raw ~on:false (fun () -> 0.)
let enabled t = t.p_on
let depth t = t.p_depth

let grow_int a = Array.append a (Array.make (Array.length a) 0)
let grow_float a = Array.append a (Array.make (Array.length a) 0.)

let grow_nodes t =
  t.n_phase <- grow_int t.n_phase;
  t.n_parent <- grow_int t.n_parent;
  t.n_first_child <- grow_int t.n_first_child;
  t.n_sibling <- grow_int t.n_sibling;
  t.n_calls <- grow_int t.n_calls;
  t.n_total_ns <- grow_float t.n_total_ns;
  t.n_child_ns <- grow_float t.n_child_ns;
  t.n_words <- grow_float t.n_words;
  t.n_child_words <- grow_float t.n_child_words

let grow_stack t =
  t.s_node <- grow_int t.s_node;
  t.s_start_ns <- grow_float t.s_start_ns;
  t.s_start_words <- grow_float t.s_start_words;
  t.s_child_scopes <- grow_int t.s_child_scopes

let add_node t parent ph =
  if t.n_count = Array.length t.n_phase then grow_nodes t;
  let i = t.n_count in
  t.n_count <- i + 1;
  t.n_phase.(i) <- ph;
  t.n_parent.(i) <- parent;
  t.n_first_child.(i) <- -1;
  t.n_sibling.(i) <- t.n_first_child.(parent);
  t.n_calls.(i) <- 0;
  t.n_total_ns.(i) <- 0.;
  t.n_child_ns.(i) <- 0.;
  t.n_words.(i) <- 0.;
  t.n_child_words.(i) <- 0.;
  t.n_first_child.(parent) <- i;
  i

let find_or_add_child t parent ph =
  let rec scan i =
    if i < 0 then add_node t parent ph
    else if t.n_phase.(i) = ph then i
    else scan t.n_sibling.(i)
  in
  scan t.n_first_child.(parent)

let enter_on t ph =
  let node = find_or_add_child t t.p_cur ph in
  let d = t.p_depth in
  if d = Array.length t.s_node then grow_stack t;
  t.s_node.(d) <- node;
  t.s_child_scopes.(d) <- 0;
  (* Clock before words: the clock call's own boxing lands outside this
     scope's allocation window (it is charged to the parent and calibrated
     away there). *)
  t.s_start_ns.(d) <- t.p_clock ();
  t.s_start_words.(d) <- Gc.minor_words ();
  t.p_depth <- d + 1;
  t.p_cur <- node

let leave_on t =
  if t.p_depth > 0 then begin
    (* Words before clock, mirroring [enter_on]: only user allocation falls
       between the two words reads. *)
    let end_words = Gc.minor_words () in
    let end_ns = t.p_clock () in
    let d = t.p_depth - 1 in
    let node = t.s_node.(d) in
    let dt = end_ns -. t.s_start_ns.(d) in
    let dw =
      end_words -. t.s_start_words.(d)
      -. (float_of_int t.s_child_scopes.(d) *. t.p_scope_overhead_words)
    in
    let dw = if dw > 0. then dw else 0. in
    let dt = if dt > 0. then dt else 0. in
    t.n_calls.(node) <- t.n_calls.(node) + 1;
    t.n_total_ns.(node) <- t.n_total_ns.(node) +. dt;
    t.n_words.(node) <- t.n_words.(node) +. dw;
    let parent = t.n_parent.(node) in
    t.n_child_ns.(parent) <- t.n_child_ns.(parent) +. dt;
    t.n_child_words.(parent) <- t.n_child_words.(parent) +. dw;
    if d > 0 then t.s_child_scopes.(d - 1) <- t.s_child_scopes.(d - 1) + 1;
    t.p_depth <- d;
    t.p_cur <- parent
  end

let[@inline] enter t ph = if t.p_on then enter_on t ph
let[@inline] leave t = if t.p_on then leave_on t

let span t ph f =
  if not t.p_on then f ()
  else begin
    enter_on t ph;
    match f () with
    | v ->
        leave_on t;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        leave_on t;
        Printexc.raise_with_backtrace e bt
  end

let reset t =
  t.n_count <- 1;
  t.n_first_child.(0) <- -1;
  t.n_calls.(0) <- 0;
  t.n_total_ns.(0) <- 0.;
  t.n_child_ns.(0) <- 0.;
  t.n_words.(0) <- 0.;
  t.n_child_words.(0) <- 0.;
  t.p_depth <- 0;
  t.p_cur <- 0

let calibration_phase = phase "_prof_calibrate"

(* One enter/leave pair allocates only the clock-result boxes, a fixed
   (deterministic) number of words on a given build; measure it instead of
   hard-coding the boxing layout of the compiler in use. *)
let calibrate t =
  enter_on t calibration_phase;
  leave_on t;
  let rounds = 64 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    enter_on t calibration_phase;
    leave_on t
  done;
  let w1 = Gc.minor_words () in
  t.p_scope_overhead_words <- (w1 -. w0) /. float_of_int rounds;
  reset t

let default_clock () = Int64.to_float (Monotonic_clock.now ())

let create ?(clock = default_clock) () =
  let t = make_raw ~on:true clock in
  calibrate t;
  t

let spawn t =
  let s = make_raw ~on:true t.p_clock in
  calibrate s;
  s

(* Domain-local installation, mirroring [Sink]. *)
type slot = { mutable installed : t }

let slot_key = Domain.DLS.new_key (fun () -> { installed = disabled })
let install t = (Domain.DLS.get slot_key).installed <- t
let uninstall () = (Domain.DLS.get slot_key).installed <- disabled
let installed () = (Domain.DLS.get slot_key).installed

let with_profiler t f =
  let slot = Domain.DLS.get slot_key in
  let previous = slot.installed in
  slot.installed <- t;
  Fun.protect ~finally:(fun () -> slot.installed <- previous) f

(* Snapshots: preorder DFS, children sorted by phase name. *)

type row = {
  r_path : string;
  r_name : string;
  r_depth : int;
  r_calls : int;
  r_total_ns : float;
  r_self_ns : float;
  r_words : float;
  r_self_words : float;
}

let sorted_children t node =
  let rec collect acc i =
    if i < 0 then acc else collect (i :: acc) (t.n_sibling.(i))
  in
  collect [] t.n_first_child.(node)
  |> List.sort (fun a b ->
         String.compare (phase_name t.n_phase.(a)) (phase_name t.n_phase.(b)))

let rows t =
  let out = ref [] in
  let rec visit node path depth =
    let name = phase_name t.n_phase.(node) in
    let path = if path = "" then name else path ^ "/" ^ name in
    let self_ns = t.n_total_ns.(node) -. t.n_child_ns.(node) in
    let self_words = t.n_words.(node) -. t.n_child_words.(node) in
    out :=
      {
        r_path = path;
        r_name = name;
        r_depth = depth;
        r_calls = t.n_calls.(node);
        r_total_ns = t.n_total_ns.(node);
        r_self_ns = (if self_ns > 0. then self_ns else 0.);
        r_words = t.n_words.(node);
        r_self_words = (if self_words > 0. then self_words else 0.);
      }
      :: !out;
    List.iter (fun c -> visit c path (depth + 1)) (sorted_children t node)
  in
  List.iter (fun c -> visit c "" 1) (sorted_children t 0);
  List.rev !out

let absorb ~into src =
  let rec visit src_node into_node =
    List.iter
      (fun c ->
        let ph = src.n_phase.(c) in
        let dst = find_or_add_child into into_node ph in
        into.n_calls.(dst) <- into.n_calls.(dst) + src.n_calls.(c);
        into.n_total_ns.(dst) <- into.n_total_ns.(dst) +. src.n_total_ns.(c);
        into.n_child_ns.(dst) <- into.n_child_ns.(dst) +. src.n_child_ns.(c);
        into.n_words.(dst) <- into.n_words.(dst) +. src.n_words.(c);
        into.n_child_words.(dst) <-
          into.n_child_words.(dst) +. src.n_child_words.(c);
        visit c dst)
      (sorted_children src src_node)
  in
  into.n_child_ns.(0) <- into.n_child_ns.(0) +. src.n_child_ns.(0);
  into.n_child_words.(0) <- into.n_child_words.(0) +. src.n_child_words.(0);
  visit 0 0

(* Rendering *)

let row_json r =
  Json.Obj
    [
      ("path", Json.String r.r_path);
      ("depth", Json.Int r.r_depth);
      ("calls", Json.Int r.r_calls);
      ("total_ns", Json.Float r.r_total_ns);
      ("self_ns", Json.Float r.r_self_ns);
      ("words", Json.Float r.r_words);
      ("self_words", Json.Float r.r_self_words);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "rthv-profile/1");
      ("rows", Json.List (List.map row_json (rows t)));
    ]

let of_json doc =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" doc with
    | Some (Json.String "rthv-profile/1") -> Ok ()
    | _ -> Error "profile: expected schema rthv-profile/1"
  in
  let* rows =
    match Json.member "rows" doc with
    | Some (Json.List l) -> Ok l
    | _ -> Error "profile: missing rows"
  in
  let field name conv j =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "profile row: bad field %S" name)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest ->
        let* path = field "path" Json.to_str j in
        let* depth = field "depth" Json.to_int j in
        let* calls = field "calls" Json.to_int j in
        let* total_ns = field "total_ns" Json.to_float j in
        let* self_ns = field "self_ns" Json.to_float j in
        let* words = field "words" Json.to_float j in
        let* self_words = field "self_words" Json.to_float j in
        let name =
          match String.rindex_opt path '/' with
          | None -> path
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        in
        go
          ({
             r_path = path;
             r_name = name;
             r_depth = depth;
             r_calls = calls;
             r_total_ns = total_ns;
             r_self_ns = self_ns;
             r_words = words;
             r_self_words = self_words;
           }
           :: acc)
          rest
  in
  go [] rows

let pp_table ppf t =
  let rows = rows t in
  let name_width =
    List.fold_left
      (fun w r -> max w (((r.r_depth - 1) * 2) + String.length r.r_name))
      5 rows
  in
  Format.fprintf ppf "%-*s %10s %12s %12s %14s %14s@." name_width "phase"
    "calls" "total ms" "self ms" "words" "self words";
  List.iter
    (fun r ->
      let indent = String.make ((r.r_depth - 1) * 2) ' ' in
      Format.fprintf ppf "%-*s %10d %12.3f %12.3f %14.0f %14.0f@." name_width
        (indent ^ r.r_name) r.r_calls (r.r_total_ns /. 1e6)
        (r.r_self_ns /. 1e6) r.r_words r.r_self_words)
    rows;
  (* Allocation-attribution waterfall: which phase's own code allocates. *)
  let alloc =
    List.filter (fun r -> r.r_self_words > 0.) rows
    |> List.sort (fun a b ->
           match compare b.r_self_words a.r_self_words with
           | 0 -> String.compare a.r_path b.r_path
           | c -> c)
  in
  if alloc <> [] then begin
    let path_width =
      List.fold_left (fun w r -> max w (String.length r.r_path)) 4 alloc
    in
    let max_words =
      List.fold_left (fun m r -> Float.max m r.r_self_words) 1. alloc
    in
    Format.fprintf ppf "@.allocation attribution (self words)@.";
    List.iter
      (fun r ->
        let bar =
          int_of_float (Float.round (40. *. r.r_self_words /. max_words))
        in
        Format.fprintf ppf "  %-*s %14.0f  %s@." path_width r.r_path
          r.r_self_words
          (String.make (max bar 1) '#'))
      alloc
  end

let to_chrome t =
  let events = ref [] in
  let emit j = events := j :: !events in
  emit
    (Json.Obj
       [
         ("name", Json.String "thread_name");
         ("ph", Json.String "M");
         ("pid", Json.Int 0);
         ("tid", Json.Int 0);
         ( "args",
           Json.Obj [ ("name", Json.String "rthv profile (aggregate)") ] );
       ]);
  (* Synthetic timeline: each node becomes one complete slice of its total
     duration, children laid out sequentially from the parent's start so
     nesting is visually exact even though times are aggregates. *)
  let rec visit node start_ns =
    let children = sorted_children t node in
    let cursor = ref start_ns in
    List.iter
      (fun c ->
        let dur = t.n_total_ns.(c) in
        emit
          (Json.Obj
             [
               ("name", Json.String (phase_name t.n_phase.(c)));
               ("ph", Json.String "X");
               ("ts", Json.Float (!cursor /. 1e3));
               ("dur", Json.Float (dur /. 1e3));
               ("pid", Json.Int 0);
               ("tid", Json.Int 0);
               ( "args",
                 Json.Obj
                   [
                     ("calls", Json.Int t.n_calls.(c));
                     ("words", Json.Float t.n_words.(c));
                   ] );
             ]);
        visit c !cursor;
        cursor := !cursor +. dur)
      children
  in
  visit 0 0.;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]
