exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let format_name = "rthv-tracestore/1"
let magic = format_name ^ "\n"
let default_block_events = 8192
let max_kinds = 62

(* --- varint / zigzag ----------------------------------------------------- *)

(* LEB128 on the non-negative range; signed values go through the zigzag
   map first so small magnitudes of either sign stay short.  OCaml ints are
   63-bit, hence the asr 62 in the forward map. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let add_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let add_zigzag buf n = add_varint buf (zigzag n)

(* Decoding cursor over a [Bytes.t] slice. *)
type cursor = { data : Bytes.t; mutable pos : int; limit : int }

let read_varint cur =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if cur.pos >= cur.limit then corrupt "truncated varint";
    let byte = Char.code (Bytes.unsafe_get cur.data cur.pos) in
    cur.pos <- cur.pos + 1;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
    else if !shift > 62 then corrupt "varint overflows a 63-bit int"
  done;
  !v

let read_zigzag cur = unzigzag (read_varint cur)

let add_u32_le buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

(* --- writer -------------------------------------------------------------- *)

let check_arities arities =
  if Array.length arities = 0 || Array.length arities > max_kinds then
    invalid_arg "Tracestore: kind count must be in 1..62";
  Array.iter
    (fun a ->
      if a < 0 || a > 4 then invalid_arg "Tracestore: arity must be in 0..4")
    arities

module Writer = struct
  type t = {
    oc : out_channel;
    arities : int array;
    block_events : int;
    times : int array;
    kinds : int array;
    col_a : int array;
    col_b : int array;
    col_c : int array;
    col_d : int array;
    scratch : Buffer.t;
    header : Buffer.t;
    mutable count : int;  (* rows buffered in the current block *)
    mutable min_time : int;
    mutable max_time : int;
    mutable kind_mask : int;
    mutable pmask : int;
    mutable written : int;
    mutable blocks : int;
  }

  let create ?(block_events = default_block_events) ~arities oc =
    if block_events <= 0 then
      invalid_arg "Tracestore.Writer.create: block_events must be positive";
    check_arities arities;
    output_string oc magic;
    output_char oc (Char.chr (Array.length arities));
    Array.iter (fun a -> output_char oc (Char.chr a)) arities;
    {
      oc;
      arities = Array.copy arities;
      block_events;
      times = Array.make block_events 0;
      kinds = Array.make block_events 0;
      col_a = Array.make block_events 0;
      col_b = Array.make block_events 0;
      col_c = Array.make block_events 0;
      col_d = Array.make block_events 0;
      scratch = Buffer.create (block_events * 4);
      header = Buffer.create 64;
      count = 0;
      min_time = max_int;
      max_time = min_int;
      kind_mask = 0;
      pmask = 0;
      written = 0;
      blocks = 0;
    }

  let flush_block w =
    if w.count > 0 then begin
      let n = w.count in
      Buffer.clear w.header;
      add_varint w.header n;
      add_zigzag w.header w.min_time;
      add_zigzag w.header w.max_time;
      add_varint w.header w.kind_mask;
      add_varint w.header w.pmask;
      Buffer.clear w.scratch;
      (* Time column: deltas against the previous row, the first against
         the block's min; zigzag because a ring truncation or an unordered
         source may hand us non-monotone times. *)
      let prev = ref w.min_time in
      for i = 0 to n - 1 do
        add_zigzag w.scratch (w.times.(i) - !prev);
        prev := w.times.(i)
      done;
      for i = 0 to n - 1 do
        Buffer.add_char w.scratch (Char.unsafe_chr w.kinds.(i))
      done;
      let column col j =
        for i = 0 to n - 1 do
          if w.arities.(w.kinds.(i)) > j then add_zigzag w.scratch col.(i)
        done
      in
      column w.col_a 0;
      column w.col_b 1;
      column w.col_c 2;
      column w.col_d 3;
      let lengths = Buffer.create 8 in
      add_u32_le lengths (Buffer.length w.header);
      Buffer.output_buffer w.oc lengths;
      Buffer.output_buffer w.oc w.header;
      Buffer.clear lengths;
      add_u32_le lengths (Buffer.length w.scratch);
      Buffer.output_buffer w.oc lengths;
      Buffer.output_buffer w.oc w.scratch;
      w.blocks <- w.blocks + 1;
      w.count <- 0;
      w.min_time <- max_int;
      w.max_time <- min_int;
      w.kind_mask <- 0;
      w.pmask <- 0
    end

  let append w ~time ~kind ~pmask ~a ~b ~c ~d =
    if kind < 0 || kind >= Array.length w.arities then
      invalid_arg "Tracestore.Writer.append: kind out of range";
    let i = w.count in
    w.times.(i) <- time;
    w.kinds.(i) <- kind;
    w.col_a.(i) <- a;
    w.col_b.(i) <- b;
    w.col_c.(i) <- c;
    w.col_d.(i) <- d;
    if time < w.min_time then w.min_time <- time;
    if time > w.max_time then w.max_time <- time;
    w.kind_mask <- w.kind_mask lor (1 lsl kind);
    w.pmask <- w.pmask lor pmask;
    w.count <- i + 1;
    w.written <- w.written + 1;
    if w.count = w.block_events then flush_block w

  let events_written w = w.written
  let blocks_written w = w.blocks
end

let with_file_writer ?block_events ~arities path f =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let w = Writer.create ?block_events ~arities oc in
      let v = f w in
      Writer.flush_block w;
      v)

(* --- reading ------------------------------------------------------------- *)

type filter = {
  t_min : int option;
  t_max : int option;
  kind_mask : int option;
  pmask : int option;
}

let pass_all = { t_min = None; t_max = None; kind_mask = None; pmask = None }

type stats = {
  s_blocks : int;
  s_blocks_scanned : int;
  s_rows : int;
  s_matched : int;
}

let read_header ic =
  let m = Bytes.create (String.length magic) in
  (try really_input ic m 0 (String.length magic)
   with End_of_file -> corrupt "missing %s magic" format_name);
  if Bytes.to_string m <> magic then corrupt "bad magic (not a %s file)" format_name;
  let n_kinds =
    try Char.code (input_char ic) with End_of_file -> corrupt "truncated header"
  in
  if n_kinds = 0 || n_kinds > max_kinds then
    corrupt "kind count %d out of range" n_kinds;
  Array.init n_kinds (fun _ ->
      let a =
        try Char.code (input_char ic)
        with End_of_file -> corrupt "truncated arity table"
      in
      if a > 4 then corrupt "arity %d out of range" a;
      a)

let arities path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_header ic)

(* A 4-byte little-endian length, or None at a clean end of file. *)
let read_u32_le_opt ic =
  match input_char ic with
  | exception End_of_file -> None
  | c0 ->
      let b = Bytes.create 3 in
      (try really_input ic b 0 3
       with End_of_file -> corrupt "truncated block length");
      Some
        (Char.code c0
        lor (Char.code (Bytes.get b 0) lsl 8)
        lor (Char.code (Bytes.get b 1) lsl 16)
        lor (Char.code (Bytes.get b 2) lsl 24))

(* Reusable decode buffers, grown on demand: a scan over a million events
   touches every block with the same six arrays. *)
type scratch = {
  mutable cap : int;
  mutable times : int array;
  mutable kinds : int array;
  mutable cols : int array array;  (* 4 columns *)
  mutable bytes : Bytes.t;
}

let ensure_rows sc n =
  if n > sc.cap then begin
    let cap = Stdlib.max n (2 * sc.cap) in
    sc.cap <- cap;
    sc.times <- Array.make cap 0;
    sc.kinds <- Array.make cap 0;
    sc.cols <- Array.init 4 (fun _ -> Array.make cap 0)
  end

let ensure_bytes sc n =
  if Bytes.length sc.bytes < n then
    sc.bytes <- Bytes.create (Stdlib.max n (2 * Bytes.length sc.bytes))

let scan ?(filter = pass_all) path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let arities = read_header ic in
      let n_kinds = Array.length arities in
      let sc =
        {
          cap = 0;
          times = [||];
          kinds = [||];
          cols = [||];
          bytes = Bytes.create 0;
        }
      in
      let blocks = ref 0
      and scanned = ref 0
      and rows = ref 0
      and matched = ref 0 in
      let continue = ref true in
      while !continue do
        match read_u32_le_opt ic with
        | None -> continue := false
        | Some header_len ->
            incr blocks;
            ensure_bytes sc header_len;
            (try really_input ic sc.bytes 0 header_len
             with End_of_file -> corrupt "truncated block header");
            let cur = { data = sc.bytes; pos = 0; limit = header_len } in
            let n = read_varint cur in
            let min_time = read_zigzag cur in
            let max_time = read_zigzag cur in
            let kind_mask = read_varint cur in
            let block_pmask = read_varint cur in
            let body_len =
              match read_u32_le_opt ic with
              | Some l -> l
              | None -> corrupt "missing block body"
            in
            let skip =
              (match filter.t_min with Some t -> max_time < t | None -> false)
              || (match filter.t_max with Some t -> min_time > t | None -> false)
              || (match filter.kind_mask with
                 | Some m -> m land kind_mask = 0
                 | None -> false)
              || match filter.pmask with
                 | Some m -> m land block_pmask = 0
                 | None -> false
            in
            if skip then seek_in ic (pos_in ic + body_len)
            else begin
              incr scanned;
              rows := !rows + n;
              if n < 0 then corrupt "negative row count";
              ensure_rows sc n;
              ensure_bytes sc body_len;
              (try really_input ic sc.bytes 0 body_len
               with End_of_file -> corrupt "truncated block body");
              let cur = { data = sc.bytes; pos = 0; limit = body_len } in
              let prev = ref min_time in
              for i = 0 to n - 1 do
                let t = !prev + read_zigzag cur in
                sc.times.(i) <- t;
                prev := t
              done;
              for i = 0 to n - 1 do
                if cur.pos >= cur.limit then corrupt "truncated kind column";
                let k = Char.code (Bytes.unsafe_get cur.data cur.pos) in
                cur.pos <- cur.pos + 1;
                if k >= n_kinds then corrupt "kind %d out of range" k;
                sc.kinds.(i) <- k
              done;
              for j = 0 to 3 do
                let col = sc.cols.(j) in
                for i = 0 to n - 1 do
                  if arities.(sc.kinds.(i)) > j then col.(i) <- read_zigzag cur
                  else col.(i) <- 0
                done
              done;
              if cur.pos <> cur.limit then corrupt "trailing bytes in block body";
              let kmask =
                match filter.kind_mask with Some m -> m | None -> -1
              in
              let lo = match filter.t_min with Some t -> t | None -> min_int in
              let hi = match filter.t_max with Some t -> t | None -> max_int in
              let ca = sc.cols.(0)
              and cb = sc.cols.(1)
              and cc = sc.cols.(2)
              and cd = sc.cols.(3) in
              for i = 0 to n - 1 do
                let t = sc.times.(i) and k = sc.kinds.(i) in
                if t >= lo && t <= hi && kmask land (1 lsl k) <> 0 then begin
                  incr matched;
                  f ~time:t ~kind:k ~a:ca.(i) ~b:cb.(i) ~c:cc.(i) ~d:cd.(i)
                end
              done
            end
      done;
      {
        s_blocks = !blocks;
        s_blocks_scanned = !scanned;
        s_rows = !rows;
        s_matched = !matched;
      })
