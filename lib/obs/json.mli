(** Minimal JSON values: enough to emit and re-read the telemetry formats
    (metrics snapshots, Chrome Trace Event JSON, JSONL trace lines) without
    an external dependency.

    The emitter produces RFC 8259 output (non-finite floats become
    [null]); the parser accepts any RFC 8259 document, which keeps the
    round-trip tests honest against third-party consumers such as [jq] and
    Perfetto. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string escaping of the characters that need it (quote, backslash,
    control characters). *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Parse one complete document; trailing whitespace is allowed, trailing
    garbage is an error.  Errors carry a character offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on anything else. *)

val to_int : t -> int option
(** [Int] directly, or a [Float] with an integral value. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
