(* A per-IRQ causal span: the six timestamps every interrupt instance
   passes through, from hardware assertion to bottom-handler completion.
   The simulator fills one of these per IRQ and hands it to the sink; the
   layout mirrors the paper's latency decomposition (eq. 2 and Fig. 3) so
   the difference of consecutive timestamps is a named latency component. *)

type t = {
  sp_irq : int;
  sp_line : int;
  sp_source : string;
  sp_class : string;  (* "direct" | "interposed" | "delayed" *)
  sp_arrival : float;
  sp_top_start : float;
  sp_top_end : float;
  sp_decision : float;
  sp_bh_start : float;
  sp_completion : float;
}

let latency t = t.sp_completion -. t.sp_arrival

(* The component between the monitor/classification decision and the first
   bottom-handler cycle is the wait the paper's two bounds differ on:
   delayed handling waits for the subscriber's slot (eq. 11-12), interposed
   handling waits only for the scheduler manipulation (eq. 16), and direct
   handling is already in-slot. *)
let wait_component = function
  | "interposed" -> "interposed_wait"
  | "delayed" -> "slot_wait"
  | _ -> "queue_wait"

let component_names t =
  [
    "top_wait"; "top_handler"; "decision_wait"; wait_component t.sp_class;
    "bottom_handler";
  ]

let all_component_names =
  [
    "top_wait"; "top_handler"; "decision_wait"; "queue_wait"; "slot_wait";
    "interposed_wait"; "bottom_handler";
  ]

let components t =
  [
    ("top_wait", t.sp_top_start -. t.sp_arrival);
    ("top_handler", t.sp_top_end -. t.sp_top_start);
    ("decision_wait", t.sp_decision -. t.sp_top_end);
    (wait_component t.sp_class, t.sp_bh_start -. t.sp_decision);
    ("bottom_handler", t.sp_completion -. t.sp_bh_start);
  ]

let valid t =
  t.sp_arrival <= t.sp_top_start
  && t.sp_top_start <= t.sp_top_end
  && t.sp_top_end <= t.sp_decision
  && t.sp_decision <= t.sp_bh_start
  && t.sp_bh_start <= t.sp_completion

let pp ppf t =
  Format.fprintf ppf "irq=%d line=%d %s/%s latency=%.1fus" t.sp_irq t.sp_line
    t.sp_source t.sp_class (latency t);
  List.iter
    (fun (name, v) -> Format.fprintf ppf " %s=%.1f" name v)
    (components t)
