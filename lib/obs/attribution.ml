(* Latency attribution: aggregate per-IRQ spans into per-(source, class)
   waterfalls.  Each component gets its own streaming-quantile digest, so
   the aggregation is O(1) memory per group regardless of the number of
   IRQs; the worst span (maximum end-to-end latency) is kept whole for the
   report's drill-down. *)

type group = {
  g_source : string;
  g_class : string;
  mutable g_count : int;
  g_latency : Quantile.t;
  g_components : (string, Quantile.t) Hashtbl.t;
  mutable g_worst : Span.t option;
}

type t = { groups : ((string * string), group) Hashtbl.t }

let create () = { groups = Hashtbl.create 8 }

let group t sp =
  let key = (sp.Span.sp_source, sp.Span.sp_class) in
  match Hashtbl.find_opt t.groups key with
  | Some g -> g
  | None ->
      let g =
        {
          g_source = sp.Span.sp_source;
          g_class = sp.Span.sp_class;
          g_count = 0;
          g_latency = Quantile.create ();
          g_components = Hashtbl.create 8;
          g_worst = None;
        }
      in
      Hashtbl.add t.groups key g;
      g

let record t sp =
  let g = group t sp in
  g.g_count <- g.g_count + 1;
  Quantile.observe g.g_latency (Span.latency sp);
  List.iter
    (fun (name, v) ->
      let q =
        match Hashtbl.find_opt g.g_components name with
        | Some q -> q
        | None ->
            let q = Quantile.create () in
            Hashtbl.add g.g_components name q;
            q
      in
      Quantile.observe q v)
    (Span.components sp);
  match g.g_worst with
  | Some w when Span.latency w >= Span.latency sp -> ()
  | _ -> g.g_worst <- Some sp

let sink t =
  { Sink.noop with Sink.span = (fun sp -> record t sp) }

(* --- read-out ----------------------------------------------------------- *)

type stats = { st_p50 : float; st_p99 : float; st_max : float; st_mean : float }

let stats_of q =
  let v f = Option.value ~default:0. f in
  {
    st_p50 = v (Quantile.quantile q 0.5);
    st_p99 = v (Quantile.quantile q 0.99);
    st_max = v (Quantile.max_value q);
    st_mean = v (Quantile.mean q);
  }

type row = {
  r_source : string;
  r_class : string;
  r_count : int;
  r_latency : stats;
  r_components : (string * stats) list;  (* causal order *)
  r_worst : Span.t option;
}

let row_of_group g =
  let components =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt g.g_components name with
        | Some q -> Some (name, stats_of q)
        | None -> None)
      Span.all_component_names
  in
  {
    r_source = g.g_source;
    r_class = g.g_class;
    r_count = g.g_count;
    r_latency = stats_of g.g_latency;
    r_components = components;
    r_worst = g.g_worst;
  }

let rows t =
  Hashtbl.fold (fun _ g acc -> g :: acc) t.groups []
  |> List.sort (fun a b ->
         match String.compare a.g_source b.g_source with
         | 0 -> String.compare a.g_class b.g_class
         | c -> c)
  |> List.map row_of_group

let total_spans t =
  Hashtbl.fold (fun _ g acc -> acc + g.g_count) t.groups 0
