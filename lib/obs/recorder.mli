(** Registry-backed sink.

    The standard telemetry wiring: create a recorder, {!install} it, run
    simulations, then read its {!registry} (text, JSON or Prometheus via
    {!Registry}).  [incr] lands in counters, [gauge] in gauges and
    [observe] in streaming-quantile summaries, so latency percentiles are
    tracked online without sample retention.  Spans are folded into
    [rthv_irq_spans_total{source,class}] counters and one
    [rthv_irq_component_us{source,class,component}] summary per latency
    component (see {!Span.components}). *)

type t

val create : ?registry:Registry.t -> unit -> t
(** Record into [registry] (default: a fresh one). *)

val registry : t -> Registry.t
val sink : t -> Sink.t

val install : t -> unit
(** [Sink.install (sink t)]. *)
