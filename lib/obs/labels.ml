type t = (string * string) list

let empty = []

let v pairs =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
  in
  let rec check = function
    | ("", _) :: _ -> invalid_arg "Labels.v: empty label key"
    | (a, _) :: (b, _) :: _ when a = b ->
        invalid_arg (Printf.sprintf "Labels.v: duplicate label key %S" a)
    | _ :: rest -> check rest
    | [] -> ()
  in
  check sorted;
  sorted

let add key value t = v ((key, value) :: (t : t :> (string * string) list))
let of_int key i = [ (key, string_of_int i) ]
let to_list t = t
let is_empty t = t = []
let compare = Stdlib.compare

let pp ppf = function
  | [] -> ()
  | pairs ->
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) pairs))

(* Prometheus label values escape backslash, double quote and newline. *)
let escape_value s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus = function
  | [] -> ""
  | pairs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_value v))
             pairs)
      ^ "}"
