type t = {
  incr : string -> Labels.t -> int -> unit;
  gauge : string -> Labels.t -> float -> unit;
  observe : string -> Labels.t -> float -> unit;
  span : Span.t -> unit;
}

let noop =
  {
    incr = (fun _ _ _ -> ());
    gauge = (fun _ _ _ -> ());
    observe = (fun _ _ _ -> ());
    span = (fun _ -> ());
  }

(* The installed sink is domain-local: installing from a worker domain
   affects only that domain, so parallel sweep tasks can each record into
   their own registry without racing (see Rthv_par.Par's [?metrics]).
   Fresh domains start with the no-op sink.  The mutable record keeps the
   hot-path check at one DLS lookup plus one field read. *)
type state = { mutable s_current : t; mutable s_enabled : bool }

let state_key =
  Domain.DLS.new_key (fun () -> { s_current = noop; s_enabled = false })

let state () = Domain.DLS.get state_key

let install sink =
  let st = state () in
  st.s_current <- sink;
  st.s_enabled <- not (sink == noop)

let uninstall () =
  let st = state () in
  st.s_current <- noop;
  st.s_enabled <- false

let active () = (state ()).s_enabled

let with_sink sink f =
  let previous = (state ()).s_current in
  install sink;
  Fun.protect ~finally:(fun () -> install previous) f

let incr name labels n =
  let st = state () in
  if st.s_enabled then st.s_current.incr name labels n

let gauge name labels v =
  let st = state () in
  if st.s_enabled then st.s_current.gauge name labels v

let observe name labels x =
  let st = state () in
  if st.s_enabled then st.s_current.observe name labels x

let span sp =
  let st = state () in
  if st.s_enabled then st.s_current.span sp

let tee a b =
  {
    incr =
      (fun name labels n ->
        a.incr name labels n;
        b.incr name labels n);
    gauge =
      (fun name labels v ->
        a.gauge name labels v;
        b.gauge name labels v);
    observe =
      (fun name labels x ->
        a.observe name labels x;
        b.observe name labels x);
    span =
      (fun sp ->
        a.span sp;
        b.span sp);
  }
