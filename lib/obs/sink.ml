type t = {
  incr : string -> Labels.t -> int -> unit;
  gauge : string -> Labels.t -> float -> unit;
  observe : string -> Labels.t -> float -> unit;
}

let noop =
  {
    incr = (fun _ _ _ -> ());
    gauge = (fun _ _ _ -> ());
    observe = (fun _ _ _ -> ());
  }

let current = ref noop
let enabled = ref false

let install sink =
  current := sink;
  enabled := not (sink == noop)

let uninstall () =
  current := noop;
  enabled := false

let active () = !enabled

let with_sink sink f =
  let previous = !current in
  install sink;
  Fun.protect ~finally:(fun () -> install previous) f

let incr name labels n = if !enabled then !current.incr name labels n
let gauge name labels v = if !enabled then !current.gauge name labels v
let observe name labels x = if !enabled then !current.observe name labels x
