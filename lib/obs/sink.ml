type t = {
  incr : string -> Labels.t -> int -> unit;
  gauge : string -> Labels.t -> float -> unit;
  observe : string -> Labels.t -> float -> unit;
  span : Span.t -> unit;
}

let noop =
  {
    incr = (fun _ _ _ -> ());
    gauge = (fun _ _ _ -> ());
    observe = (fun _ _ _ -> ());
    span = (fun _ -> ());
  }

(* The installed sink is domain-local: installing from a worker domain
   affects only that domain, so parallel sweep tasks can each record into
   their own registry without racing (see Rthv_par.Par's [?metrics]).
   Fresh domains start with the no-op sink.

   [installed_count] counts domains with a real sink, process-wide.  The
   common case is zero sinks anywhere, so [active] and the dispatchers
   check the plain atomic load first — one read of an immutable location
   plus a predictable branch — and only fall through to the (costlier) DLS
   lookup when some domain actually has telemetry on.  A domain that dies
   without [uninstall] leaves the count high; that only costs the fast
   path, never correctness, since the DLS check still gates dispatch. *)
type state = { mutable s_current : t; mutable s_enabled : bool }

let installed_count = Atomic.make 0

let state_key =
  Domain.DLS.new_key (fun () -> { s_current = noop; s_enabled = false })

let state () = Domain.DLS.get state_key

let install sink =
  let st = state () in
  let was = st.s_enabled in
  st.s_current <- sink;
  st.s_enabled <- not (sink == noop);
  if st.s_enabled && not was then Atomic.incr installed_count
  else if was && not st.s_enabled then Atomic.decr installed_count

let uninstall () = install noop

let[@inline] any_installed () = Atomic.get installed_count > 0
let[@inline] active () = any_installed () && (state ()).s_enabled

let with_sink sink f =
  let previous = (state ()).s_current in
  install sink;
  Fun.protect ~finally:(fun () -> install previous) f

let[@inline] incr name labels n =
  if any_installed () then begin
    let st = state () in
    if st.s_enabled then st.s_current.incr name labels n
  end

let[@inline] gauge name labels v =
  if any_installed () then begin
    let st = state () in
    if st.s_enabled then st.s_current.gauge name labels v
  end

let[@inline] observe name labels x =
  if any_installed () then begin
    let st = state () in
    if st.s_enabled then st.s_current.observe name labels x
  end

let[@inline] span sp =
  if any_installed () then begin
    let st = state () in
    if st.s_enabled then st.s_current.span sp
  end

let tee a b =
  {
    incr =
      (fun name labels n ->
        a.incr name labels n;
        b.incr name labels n);
    gauge =
      (fun name labels v ->
        a.gauge name labels v;
        b.gauge name labels v);
    observe =
      (fun name labels x ->
        a.observe name labels x;
        b.observe name labels x);
    span =
      (fun sp ->
        a.span sp;
        b.span sp);
  }
