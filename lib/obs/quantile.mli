(** Streaming quantile estimation.

    The P² algorithm (Jain & Chlamtac, CACM 1985): five markers per tracked
    quantile, updated in O(1) per observation, no sample retention — the
    online replacement for sorting every latency into
    {!Rthv_stats.Summary.of_list}.  Estimates are exact up to five
    observations and converge to the true quantile as the sample grows. *)

(** {2 Single-quantile estimator} *)

type estimator

val estimator : float -> estimator
(** [estimator p] tracks the [p]-quantile, [0 < p < 1].
    @raise Invalid_argument outside that range. *)

val add : estimator -> float -> unit

val estimate : estimator -> float option
(** Current estimate; [None] before the first observation. *)

val observations : estimator -> int

(** {2 Digest: several quantiles plus the running moments} *)

type t

val default_quantiles : float list
(** [[0.5; 0.95; 0.99; 0.999]] *)

val create : ?quantiles:float list -> unit -> t
(** One P² estimator per requested quantile, plus count / mean / min /
    max tracking.  @raise Invalid_argument on an empty list or a quantile
    outside (0, 1). *)

val observe : t -> float -> unit
val count : t -> int
val mean : t -> float option
val min_value : t -> float option
val max_value : t -> float option

val quantile : t -> float -> float option
(** Estimate for one of the tracked quantiles; [None] when that quantile
    is not tracked or nothing was observed. *)

val quantiles : t -> (float * float) list
(** All tracked [(p, estimate)] pairs, ascending in [p]; empty before the
    first observation. *)

val copy : t -> t
(** Independent deep copy; further observations on either side do not
    affect the other. *)

val merge : t -> t -> t
(** [merge a b] is a fresh digest summarising both inputs (neither is
    mutated).  Count, sum, min and max are combined exactly.  Quantile
    estimates are exact while the combined count is at most five; beyond
    that each side's markers are expanded into one pseudo-sample per rank
    (piecewise-linear in the marker sketch) and replayed, which is fully
    deterministic — merging the same digests in the same order always
    yields bit-identical results — but approximate, like P² itself.
    @raise Invalid_argument if the two digests track different quantile
    sets. *)

val pp : Format.formatter -> t -> unit
