(** Columnar binary trace store ([rthv-tracestore/1]).

    A batched, allocation-light container for timestamped integer event
    rows, designed so that recording a million events costs array stores
    plus one encode per ~8k-event block — not one allocation per event —
    and so that a later scan can skip whole blocks from a tiny per-block
    index without decoding them.

    This layer is deliberately generic: a row is [(time, kind, a, b, c, d)]
    with per-kind argument arities fixed at file creation, plus an opaque
    partition bitmask used only for block pruning.  The mapping between
    simulator events and rows lives in [Rthv_core.Trace_store]; nothing
    here knows what a partition or an IRQ is.

    {2 On-disk layout}

    {v
    file   := magic | u8 n_kinds | n_kinds x u8 arity | block*
    block  := u32le header_len | header | u32le body_len | body
    header := varint n_events | zigzag min_time | zigzag max_time
              | varint kind_mask | varint pmask
    body   := time column (zigzag deltas, first relative to min_time)
              | kind column (u8 per event)
              | arg column a..d (zigzag, only rows whose kind has the arg)
    v}

    All varints are LEB128; signed values are zigzag-mapped first.  The
    header is length-prefixed separately from the body so a reader can
    evaluate the block index (time range, kind bitmap, partition bitmap)
    and [seek] past the body without touching it — that is the predicate
    pushdown. *)

exception Corrupt of string
(** Raised by readers on malformed input (bad magic, truncated block,
    out-of-range kind).  The message names the offending structure. *)

val format_name : string
(** ["rthv-tracestore/1"] — the magic line at the start of every file. *)

val default_block_events : int
(** Events buffered per block before an automatic flush (8192). *)

val max_kinds : int
(** Kind ids live in a bitmap inside one OCaml [int]; at most 62 kinds. *)

(** {2 Writing} *)

module Writer : sig
  type t

  val create : ?block_events:int -> arities:int array -> out_channel -> t
  (** A writer whose rows have [Array.length arities] kinds, kind [k]
      carrying [arities.(k)] (0-4) argument columns.  Writes the file
      header immediately.  The channel is owned by the caller; use
      {!Rthv_obs.Tracestore.with_file_writer} for the common
      open/close-a-path case.
      @raise Invalid_argument on a non-positive [block_events], more than
      {!max_kinds} kinds, or an arity outside [0..4]. *)

  val append :
    t -> time:int -> kind:int -> pmask:int -> a:int -> b:int -> c:int -> d:int -> unit
  (** Buffer one row; flushes the current block automatically when full.
      [pmask] is OR-ed into the block's partition bitmap.  Argument columns
      beyond the kind's arity are ignored (pass 0).
      @raise Invalid_argument on an out-of-range [kind]. *)

  val flush_block : t -> unit
  (** Encode and write the buffered partial block, if any.  Does not flush
      the underlying channel. *)

  val events_written : t -> int
  (** Rows appended so far (buffered or flushed). *)

  val blocks_written : t -> int
end

val with_file_writer :
  ?block_events:int -> arities:int array -> string -> (Writer.t -> 'a) -> 'a
(** Open [path], run the callback, then flush the final block and close —
    also on exceptions. *)

(** {2 Scanning} *)

type filter = {
  t_min : int option;  (** Drop rows with [time < t_min]. *)
  t_max : int option;  (** Drop rows with [time > t_max]. *)
  kind_mask : int option;  (** Keep kind [k] iff bit [k] is set. *)
  pmask : int option;
      (** Block-pruning only: skip blocks whose stored partition bitmap
          does not intersect this mask.  Per-row partition filtering is the
          caller's business (the store does not interpret the bits). *)
}

val pass_all : filter

type stats = {
  s_blocks : int;  (** Blocks present in the file. *)
  s_blocks_scanned : int;  (** Blocks decoded (not pruned by the index). *)
  s_rows : int;  (** Rows in scanned blocks. *)
  s_matched : int;  (** Rows that passed the time/kind filters. *)
}

val scan :
  ?filter:filter ->
  string ->
  f:(time:int -> kind:int -> a:int -> b:int -> c:int -> d:int -> unit) ->
  stats
(** Stream every matching row of the file at [path] through [f], oldest
    block first, without materializing the store: decode buffers are
    reused across blocks, and blocks excluded by the index are skipped
    with a [seek].
    @raise Corrupt on malformed input, [Sys_error] on IO failure. *)

val arities : string -> int array
(** The per-kind arity table from the file header. *)
