(** The instrumentation sink.

    Simulator and engine hot paths report through this interface instead of
    touching a registry directly.  The default sink is a no-op and the
    installed-sink check is a single domain-local read, so instrumentation
    sites guard with {!active} and pay nothing (no label allocation, no
    calls) when telemetry is disabled:

    {[
      if Sink.active () then
        Sink.observe "rthv_irq_latency_us" (Labels.v [ ("source", name) ]) us
    ]}

    The installed sink is {b domain-local}: {!install} from a worker domain
    affects only that domain, and fresh domains start with {!noop}.  That is
    what lets {!Rthv_par.Par} give every parallel sweep task its own
    recorder without the tasks racing on a shared registry. *)

type t = {
  incr : string -> Labels.t -> int -> unit;
  gauge : string -> Labels.t -> float -> unit;
  observe : string -> Labels.t -> float -> unit;
      (** A sample of a distribution (latencies, per-slot stolen time). *)
  span : Span.t -> unit;
      (** A completed per-IRQ causal span (see {!Span}). *)
}

val noop : t

val install : t -> unit
val uninstall : unit -> unit

val active : unit -> bool
(** True iff a sink other than {!noop} is installed on this domain.  When no
    sink is installed on {e any} domain — the common case — this is a single
    atomic load and a predictable branch; the domain-local lookup only runs
    while telemetry is on somewhere. *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Install for the duration of the callback, restoring the previous sink
    (even on exceptions). *)

val tee : t -> t -> t
(** A sink dispatching every report to both arguments, in order. *)

(** {2 Dispatch through the installed sink}

    Each is a no-op when nothing is installed; prefer guarding call sites
    with {!active} so argument construction is skipped too. *)

val incr : string -> Labels.t -> int -> unit
val gauge : string -> Labels.t -> float -> unit
val observe : string -> Labels.t -> float -> unit
val span : Span.t -> unit
