type t = { reg : Registry.t; r_sink : Sink.t }

let span_labels sp =
  Labels.v
    [ ("source", sp.Span.sp_source); ("class", sp.Span.sp_class) ]

let record_span reg sp =
  Registry.incr reg ~labels:(span_labels sp) "rthv_irq_spans_total" 1;
  List.iter
    (fun (component, v) ->
      Registry.observe_summary reg
        ~labels:
          (Labels.v
             [
               ("source", sp.Span.sp_source);
               ("class", sp.Span.sp_class);
               ("component", component);
             ])
        "rthv_irq_component_us" v)
    (Span.components sp)

(* HELP texts for the simulator's metric families, stamped into the
   registry at recorder creation so every Prometheus exposition of a
   recorded run is self-describing. *)
let default_help =
  [
    ("rthv_irq_completed_total", "IRQs completed, by source and handling class.");
    ("rthv_irq_latency_us", "IRQ activation-to-completion latency in microseconds.");
    ("rthv_irq_spans_total", "Per-IRQ causal spans recorded.");
    ("rthv_irq_component_us", "Per-IRQ latency component in microseconds, by causal component.");
    ("rthv_monitor_decisions_total", "Monitor admission decisions, by verdict.");
    ("rthv_interpositions_total", "Interposed bottom-handler executions started.");
    ("rthv_irq_coalesced_total", "IRQs coalesced onto an already-pending activation.");
    ("rthv_slot_switches_total", "TDMA slot switches.");
    ("rthv_boundary_crossings_total", "Interpositions that crossed a slot boundary.");
    ("rthv_bh_boundary_deferrals_total", "Bottom handlers deferred at a slot boundary.");
    ("rthv_stolen_slot_us", "Slot time stolen by interposition per slot, in microseconds.");
    ("rthv_sim_time_us", "Total simulated time in microseconds.");
    ("rthv_engine_events_total", "Discrete events dispatched by the engine.");
    ("rthv_event_queue_ops_total", "Event-queue operations, by op.");
    ("rthv_busy_window_iterations", "Fixed-point iterations of the last busy-window analysis.");
    ("rthv_busy_window_residual_cycles", "Final residual of the last busy-window fixed point, in cycles.");
    ("rthv_busy_window_q_max", "Activations in the last closed busy period.");
    ("rthv_absint_steps", "Abstract-interpretation solver steps of the last run.");
    ("rthv_absint_nodes", "Constraint-system nodes of the last abstract-interpretation run.");
    ("rthv_latency_bound_us", "Analytic worst-case latency bound in microseconds, by source and class.");
    ("rthv_bound_headroom_us", "Analytic bound minus observed worst case, in microseconds.");
  ]

let create ?registry () =
  let reg =
    match registry with Some r -> r | None -> Registry.create ()
  in
  List.iter (fun (name, doc) -> Registry.set_help reg name doc) default_help;
  let r_sink =
    {
      Sink.incr = (fun name labels n -> Registry.incr reg ~labels name n);
      gauge = (fun name labels v -> Registry.set_gauge reg ~labels name v);
      observe = (fun name labels x -> Registry.observe_summary reg ~labels name x);
      span = (fun sp -> record_span reg sp);
    }
  in
  { reg; r_sink }

let registry t = t.reg
let sink t = t.r_sink
let install t = Sink.install t.r_sink
