type t = { reg : Registry.t; r_sink : Sink.t }

let create ?registry () =
  let reg =
    match registry with Some r -> r | None -> Registry.create ()
  in
  let r_sink =
    {
      Sink.incr = (fun name labels n -> Registry.incr reg ~labels name n);
      gauge = (fun name labels v -> Registry.set_gauge reg ~labels name v);
      observe = (fun name labels x -> Registry.observe_summary reg ~labels name x);
    }
  in
  { reg; r_sink }

let registry t = t.reg
let sink t = t.r_sink
let install t = Sink.install t.r_sink
