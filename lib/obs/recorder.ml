type t = { reg : Registry.t; r_sink : Sink.t }

let span_labels sp =
  Labels.v
    [ ("source", sp.Span.sp_source); ("class", sp.Span.sp_class) ]

let record_span reg sp =
  Registry.incr reg ~labels:(span_labels sp) "rthv_irq_spans_total" 1;
  List.iter
    (fun (component, v) ->
      Registry.observe_summary reg
        ~labels:
          (Labels.v
             [
               ("source", sp.Span.sp_source);
               ("class", sp.Span.sp_class);
               ("component", component);
             ])
        "rthv_irq_component_us" v)
    (Span.components sp)

let create ?registry () =
  let reg =
    match registry with Some r -> r | None -> Registry.create ()
  in
  let r_sink =
    {
      Sink.incr = (fun name labels n -> Registry.incr reg ~labels name n);
      gauge = (fun name labels v -> Registry.set_gauge reg ~labels name v);
      observe = (fun name labels x -> Registry.observe_summary reg ~labels name x);
      span = (fun sp -> record_span reg sp);
    }
  in
  { reg; r_sink }

let registry t = t.reg
let sink t = t.r_sink
let install t = Sink.install t.r_sink
