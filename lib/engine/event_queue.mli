(** Priority queue of timed events.

    A binary min-heap keyed by [(time, sequence)].  The sequence number is a
    monotonically increasing insertion index, so events scheduled for the same
    instant are delivered in insertion order — a property the hypervisor
    simulation relies on (e.g. a slot boundary scheduled before an IRQ at the
    same cycle is processed first). *)

type 'a t

type 'a entry = { time : Cycles.t; seq : int; payload : 'a }

val create : unit -> 'a t

val is_empty : 'a t -> bool
(** O(1).  Check this (or {!length}) before {!to_sorted_list} when the
    snapshot is optional — the snapshot is the expensive operation here. *)

val length : 'a t -> int
(** O(1). *)

val push : 'a t -> time:Cycles.t -> 'a -> unit
(** [push q ~time payload] schedules [payload] at [time].  [time] may be in
    the past of previously pushed events; ordering is global. *)

val peek : 'a t -> 'a entry option
(** Earliest entry without removing it. *)

val peek_time : 'a t -> Cycles.t option

val pop : 'a t -> 'a entry option
(** Remove and return the earliest entry. *)

val drop : 'a t -> unit
(** Remove the earliest entry without returning it (no-op when empty).
    Unlike {!pop} this allocates nothing — the simulator's drain loop pairs
    it with {!peek} so steady-state event delivery stays allocation-free. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a entry list
(** Non-destructive snapshot in delivery order.

    {b Cost}: every call copies the live heap prefix and sorts the copy —
    O(n) fresh allocation plus an O(n log n) [Array.sort] — because a binary
    heap is only partially ordered.  This is intended for tests and
    debugging dumps, never for the simulation hot path; callers that may
    face an empty or irrelevant queue should gate on {!is_empty}/{!length}
    (an empty queue returns [[]] without allocating). *)
