type t = int

let zero = 0
let cycles_per_us = 200
let of_us n = n * cycles_per_us

let of_us_f x =
  let c = x *. float_of_int cycles_per_us in
  int_of_float (Float.round c)

let of_ms n = n * 1000 * cycles_per_us
let of_instr n = n
let to_us t = float_of_int t /. float_of_int cycles_per_us
let to_us_int t = t / cycles_per_us
(* Monomorphic (and eta-expanded) so every call compiles to the int
   primitive — the [Stdlib] aliases would go through the polymorphic
   runtime compare / a closure application on this hot path. *)
let ( + ) (a : t) (b : t) : t = Stdlib.( + ) a b
let ( - ) (a : t) (b : t) : t = Stdlib.( - ) a b
let ( * ) (a : t) (n : int) : t = Stdlib.( * ) a n
let min (a : t) (b : t) : t = if Stdlib.( <= ) a b then a else b
let max (a : t) (b : t) : t = if Stdlib.( >= ) a b then a else b
let compare (a : t) (b : t) = Int.compare a b
let pp ppf t = Format.fprintf ppf "%.2fus" (to_us t)
