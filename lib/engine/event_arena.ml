(* Telemetry: static label sets so the guarded hot-path calls allocate
   nothing. *)
let op_push = Rthv_obs.Labels.v [ ("op", "push") ]
let op_pop = Rthv_obs.Labels.v [ ("op", "pop") ]

type t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : int array;
  mutable size : int;
  mutable next_seq : int;
}

let no_event = max_int

let create ?(capacity = 64) () =
  let capacity = if capacity < 1 then 1 else capacity in
  {
    times = Array.make capacity 0;
    seqs = Array.make capacity 0;
    payloads = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let is_empty t = t.size = 0
let length t = t.size

(* Strict (time, seq) order; seq is unique, so this is a total order. *)
let lt t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let pl = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- pl

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = if left < t.size && lt t left i then left else i in
  let smallest =
    if right < t.size && lt t right smallest then right else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let grow t =
  let capacity = Array.length t.times in
  if t.size = capacity then begin
    let extend a = Array.append a (Array.make capacity 0) in
    t.times <- extend t.times;
    t.seqs <- extend t.seqs;
    t.payloads <- extend t.payloads
  end

let push t ~time payload =
  if Rthv_obs.Sink.active () then
    Rthv_obs.Sink.incr "rthv_event_queue_ops_total" op_push 1;
  grow t;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let head_time t = if t.size = 0 then no_event else t.times.(0)
let head_payload t = t.payloads.(0)

let drop t =
  if t.size > 0 then begin
    if Rthv_obs.Sink.active () then
      Rthv_obs.Sink.incr "rthv_event_queue_ops_total" op_pop 1;
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let n = t.size in
      t.times.(0) <- t.times.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.payloads.(0) <- t.payloads.(n);
      sift_down t 0
    end
  end

let clear t = t.size <- 0

let to_sorted_list t =
  let entries =
    Array.init t.size (fun i -> (t.times.(i), t.seqs.(i), t.payloads.(i)))
  in
  Array.sort compare entries;
  Array.to_list entries
