(** Event-compressed scheduling mode for the simulation core.

    The simulation engine can run in two observationally equivalent modes:

    - [Step]: the original engine.  Every scheduling decision re-derives
      the current runner from scratch, executes exactly one contiguous
      segment, and re-enters the dispatch loop — simple, and the reference
      semantics for differential testing.
    - [Fast_forward]: the event-compressed engine.  Work is executed in
      closed-form jumps to the next event time (next queued arrival, next
      slot boundary, work completion), idle TDMA slots are batched without
      re-entering the generic dispatcher, and the hot path is
      allocation-free (packed {!Event_arena} events, pooled hypervisor work
      items).

    The next-event-jump invariant: a jump may only skip a span in which no
    queued event falls and no runnable work completes, so every trace
    event, accounting update and statistics counter is produced at exactly
    the same simulated time, in exactly the same order, as under [Step].
    The golden-digest suite and a QCheck differential property hold the two
    modes byte-identical. *)

type mode = Step | Fast_forward

val to_string : mode -> string

val of_string : string -> (mode, string) result
(** Accepts ["step"], ["fast_forward"], ["fast-forward"] and ["ff"]. *)

val env_var : string
(** ["RTHV_SIM_MODE"] — the environment override consulted by
    {!default}. *)

val of_env : unit -> mode option
(** The mode selected by [RTHV_SIM_MODE], if set and non-empty.  Raises
    [Invalid_argument] on an unrecognised value. *)

val default : unit -> mode
(** The mode a simulation runs in when the caller does not choose one:
    [of_env], falling back to [Fast_forward]. *)

val pp : Format.formatter -> mode -> unit

val jump_end : now:Cycles.t -> remaining:Cycles.t -> next_event:Cycles.t -> Cycles.t
(** [jump_end ~now ~remaining ~next_event] is the time at which the
    current jump must stop: the work's completion instant clipped to the
    next scheduled event, whichever comes first. *)
