type t = {
  mutable clock : Cycles.t;
  queue : event Event_queue.t;
  mutable live : int;
}

and event = { callback : t -> unit; mutable cancelled : bool }

type handle = event

let create () = { clock = Cycles.zero; queue = Event_queue.create (); live = 0 }
let now t = t.clock

let schedule t ~at callback =
  if at < t.clock then
    invalid_arg
      (Format.asprintf "Simulator.schedule: %a is before now (%a)" Cycles.pp at
         Cycles.pp t.clock);
  let event = { callback; cancelled = false } in
  Event_queue.push t.queue ~time:at event;
  t.live <- t.live + 1;
  event

let schedule_after t ~delay callback =
  schedule t ~at:(Cycles.( + ) t.clock delay) callback

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some { Event_queue.time; payload = event; _ } ->
      if event.cancelled then step t
      else begin
        if Rthv_obs.Sink.active () then
          Rthv_obs.Sink.incr "rthv_engine_events_total" Rthv_obs.Labels.empty 1;
        t.clock <- time;
        t.live <- t.live - 1;
        event.callback t;
        true
      end

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon ->
        ignore (step t : bool);
        loop ()
    | Some _ | None -> t.clock <- Cycles.max t.clock horizon
  in
  loop ()

let run t =
  let rec loop () = if step t then loop () in
  loop ()
