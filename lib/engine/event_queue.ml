type 'a entry = { time : Cycles.t; seq : int; payload : 'a }

(* Telemetry: static label sets so the guarded hot-path calls allocate
   nothing. *)
let op_push = Rthv_obs.Labels.v [ ("op", "push") ]
let op_pop = Rthv_obs.Labels.v [ ("op", "pop") ]

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let entry_lt a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = if capacity = 0 then 16 else capacity * 2 in
    (* The dummy cell is never read: [size] guards all accesses. *)
    let dummy = t.heap.(0) in
    let heap = Array.make new_capacity dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest =
    if left < t.size && entry_lt t.heap.(left) t.heap.(i) then left else i
  in
  let smallest =
    if right < t.size && entry_lt t.heap.(right) t.heap.(smallest) then right
    else smallest
  in
  if smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(smallest);
    t.heap.(smallest) <- tmp;
    sift_down t smallest
  end

let push t ~time payload =
  if Rthv_obs.Sink.active () then
    Rthv_obs.Sink.incr "rthv_event_queue_ops_total" op_push 1;
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.heap.(0)
let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    if Rthv_obs.Sink.active () then
      Rthv_obs.Sink.incr "rthv_event_queue_ops_total" op_pop 1;
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

let drop t =
  if t.size > 0 then begin
    if Rthv_obs.Sink.active () then
      Rthv_obs.Sink.incr "rthv_event_queue_ops_total" op_pop 1;
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end
  end

let clear t = t.size <- 0

let to_sorted_list t =
  if t.size = 0 then []
  else begin
  let entries = Array.sub t.heap 0 t.size in
  let compare_entry a b =
    match Cycles.compare a.time b.time with
    | 0 -> Stdlib.compare a.seq b.seq
    | c -> c
  in
  Array.sort compare_entry entries;
  Array.to_list entries
  end
