(** Allocation-free priority queue of timed events with int payloads.

    The packed variant of {!Event_queue} used by the simulation hot path: a
    binary min-heap keyed by [(time, sequence)] whose entries live in three
    preallocated parallel [int] arrays (time, insertion sequence, payload)
    instead of boxed records.  Push, peek and drop allocate nothing once the
    arena has grown to its working size, so a simulation reusing one arena
    across millions of events never touches the minor heap for event
    scheduling.

    Payloads are plain integers; the caller owns the encoding (the
    hypervisor simulation packs its [Boundary]/[Arrival of source] event
    type as [-1] / the source index).

    Ordering matches {!Event_queue}: events at the same instant are
    delivered in insertion order — the property the simulation relies on
    when a slot boundary and an IRQ coincide. *)

type t

val no_event : int
(** Sentinel returned by {!head_time} on an empty arena: [max_int], which
    compares greater than every real simulated time, so [min candidate
    (head_time q)] needs no emptiness branch. *)

val create : ?capacity:int -> unit -> t
(** A fresh arena with room for [capacity] (default 64) events before the
    first regrowth.  Growth doubles and never shrinks. *)

val is_empty : t -> bool
val length : t -> int

val push : t -> time:Cycles.t -> int -> unit
(** [push q ~time payload] schedules [payload] at [time].  Amortized O(log
    n), allocation-free except when the arena doubles. *)

val head_time : t -> Cycles.t
(** Earliest scheduled time, or {!no_event} when empty.  O(1), no
    allocation (unlike [Event_queue.peek_time]'s [option]). *)

val head_payload : t -> int
(** Payload of the earliest event.  Only meaningful when [not (is_empty
    q)]; unspecified on an empty arena. *)

val drop : t -> unit
(** Remove the earliest event (no-op when empty).  Allocation-free. *)

val clear : t -> unit

val to_sorted_list : t -> (Cycles.t * int * int) list
(** Non-destructive [(time, seq, payload)] snapshot in delivery order, for
    tests and debugging dumps only — it copies and sorts the live heap. *)
