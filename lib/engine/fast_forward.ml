type mode = Step | Fast_forward

let to_string = function Step -> "step" | Fast_forward -> "fast_forward"

let of_string = function
  | "step" -> Ok Step
  | "fast_forward" | "fast-forward" | "ff" -> Ok Fast_forward
  | other ->
      Error
        (Printf.sprintf
           "unknown simulation mode %S (expected step, fast_forward or ff)"
           other)

let env_var = "RTHV_SIM_MODE"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some value -> (
      match of_string value with
      | Ok mode -> Some mode
      | Error msg -> invalid_arg (env_var ^ ": " ^ msg))

let default () = match of_env () with Some mode -> mode | None -> Fast_forward

let pp ppf mode = Format.pp_print_string ppf (to_string mode)

(* The compressed engine executes work in closed-form jumps instead of
   uniform segments; each jump must stop at the next instant anything
   observable can happen.  [jump_end] is that bound: the work's own
   completion, clipped to the next scheduled event. *)
let jump_end ~now ~remaining ~next_event : Cycles.t =
  Cycles.min (Cycles.( + ) now remaining) next_event
