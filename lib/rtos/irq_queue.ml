module Cycles = Rthv_engine.Cycles

type item = {
  irq : int;
  line : int;
  arrival : Cycles.t;
  total : Cycles.t;
  mutable remaining : Cycles.t;
}

(* Ring buffer of items (power-of-two capacity): pushes allocate nothing
   beyond the item itself, unlike the former [Stdlib.Queue] cell per
   event. *)
type t = {
  mutable ring : item array;
  mutable head : int;
  mutable len : int;
  mutable high_water : int;
}

(* Filler for empty ring slots; never returned. *)
let dummy_item = { irq = -1; line = 0; arrival = 0; total = 1; remaining = 1 }

let create () = { ring = Array.make 16 dummy_item; head = 0; len = 0; high_water = 0 }

let make_item ~irq ~line ~arrival ~work =
  if work <= 0 then invalid_arg "Irq_queue.make_item: work must be positive";
  { irq; line; arrival; total = work; remaining = work }

let grow t =
  let cap = Array.length t.ring in
  let ring' = Array.make (cap * 2) dummy_item in
  for i = 0 to t.len - 1 do
    ring'.(i) <- t.ring.((t.head + i) land (cap - 1))
  done;
  t.ring <- ring';
  t.head <- 0

let push t item =
  if t.len = Array.length t.ring then grow t;
  t.ring.((t.head + t.len) land (Array.length t.ring - 1)) <- item;
  t.len <- t.len + 1;
  if t.len > t.high_water then t.high_water <- t.len

let is_empty t = t.len = 0
let length t = t.len
let head t = if t.len = 0 then raise Queue.Empty else t.ring.(t.head)
let peek t = if t.len = 0 then None else Some t.ring.(t.head)

let drop_head t =
  if t.len = 0 then invalid_arg "Irq_queue.drop_head: empty queue"
  else begin
    let item = t.ring.(t.head) in
    if item.remaining > 0 then
      invalid_arg "Irq_queue.drop_head: head still has remaining work"
    else begin
      (* Release the slot so a drained ring retains no completed items. *)
      t.ring.(t.head) <- dummy_item;
      t.head <- (t.head + 1) land (Array.length t.ring - 1);
      t.len <- t.len - 1;
      item
    end
  end

let pending_work t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    acc :=
      Cycles.( + ) !acc
        t.ring.((t.head + i) land (Array.length t.ring - 1)).remaining
  done;
  !acc

let max_observed_length t = t.high_water

let to_list t =
  List.init t.len (fun i -> t.ring.((t.head + i) land (Array.length t.ring - 1)))
