module Cycles = Rthv_engine.Cycles

type policy = Fixed_priority | Edf

type demand =
  | Bottom_handler of Irq_queue.item
  | Task_job of Task.job
  | Filler
  | Idle

type task_state = {
  spec : Task.spec;
  mutable next_index : int;
  out_port : Ipc.port option;
  in_port : Ipc.port option;
}

type t = {
  name : string;
  queue : Irq_queue.t;
  busy_loop : bool;
  policy : policy;
  tasks : task_state array;
  mutable aperiodic_count : int;
  mutable ready : Task.job list;
  mutable completions : Task.completion list;  (* newest first *)
  mutable completed_bottom : Irq_queue.item list;  (* newest first *)
  mutable cpu_time : Cycles.t;
  mutable idle_time : Cycles.t;
  mutable horizon : Cycles.t;  (* last advance_to time, for monotonicity *)
  mutable retain : bool;  (* keep completion lists (off for streaming runs) *)
}

let resolve_port ipc ~guest ~task = function
  | None -> None
  | Some port_name -> (
      match ipc with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Guest.create: task %s of %s uses port %S but no IPC registry \
                was supplied"
               task guest port_name)
      | Some registry -> (
          match Ipc.find registry port_name with
          | port -> Some port
          | exception Not_found ->
              invalid_arg
                (Printf.sprintf "Guest.create: port %S is not declared"
                   port_name)))

let create ?(tasks = []) ?(busy_loop = true) ?ipc ?(policy = Fixed_priority)
    ~name () =
  {
    name;
    queue = Irq_queue.create ();
    busy_loop;
    policy;
    tasks =
      Array.of_list
        (List.map
           (fun (spec : Task.spec) ->
             {
               spec;
               next_index = 0;
               out_port =
                 resolve_port ipc ~guest:name ~task:spec.Task.name
                   spec.Task.produces;
               in_port =
                 resolve_port ipc ~guest:name ~task:spec.Task.name
                   spec.Task.consumes;
             })
           tasks);
    aperiodic_count = 0;
    ready = [];
    completions = [];
    completed_bottom = [];
    cpu_time = 0;
    idle_time = 0;
    horizon = 0;
    retain = true;
  }

let name t = t.name
let queue t = t.queue
let busy_loop t = t.busy_loop
let has_tasks t = Array.length t.tasks > 0
let set_retain t retain = t.retain <- retain

let release_aperiodic t ~spec ~now =
  let job =
    {
      Task.task = spec;
      index = t.aperiodic_count;
      release = now;
      remaining = spec.Task.wcet;
    }
  in
  t.aperiodic_count <- t.aperiodic_count + 1;
  t.ready <- job :: t.ready

let release_time state index =
  Cycles.( + ) state.spec.Task.offset (Cycles.( * ) state.spec.Task.period index)

let advance_to t time =
  if time < t.horizon then
    invalid_arg "Guest.advance_to: time must be non-decreasing";
  t.horizon <- time;
  if Array.length t.tasks = 0 then ()
  else
  Array.iter
    (fun state ->
      let rec release () =
        let due = release_time state state.next_index in
        if due <= time then begin
          let job =
            {
              Task.task = state.spec;
              index = state.next_index;
              release = due;
              remaining = state.spec.Task.wcet;
            }
          in
          t.ready <- job :: t.ready;
          state.next_index <- state.next_index + 1;
          release ()
        end
      in
      release ())
    t.tasks

let next_release t =
  if Array.length t.tasks = 0 then None
  else
  Array.fold_left
    (fun acc state ->
      let due = release_time state state.next_index in
      match acc with
      | None -> Some due
      | Some best -> Some (Cycles.min best due))
    None t.tasks

(* Fixed priority: lowest priority number wins; EDF: earliest implicit
   deadline (release + period) wins.  Ties broken by earliest release, then
   by job index, for determinism. *)
let job_precedes policy (a : Task.job) (b : Task.job) =
  let primary =
    match policy with
    | Fixed_priority ->
        compare a.Task.task.Task.priority b.Task.task.Task.priority
    | Edf ->
        compare
          (Cycles.( + ) a.Task.release a.Task.task.Task.period)
          (Cycles.( + ) b.Task.release b.Task.task.Task.period)
  in
  if primary <> 0 then primary < 0
  else if a.Task.release <> b.Task.release then a.Task.release < b.Task.release
  else a.Task.index < b.Task.index

let pick_ready t =
  match t.ready with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best job -> if job_precedes t.policy job best then job else best)
           first rest)

let demand t =
  match Irq_queue.peek t.queue with
  | Some item -> Bottom_handler item
  | None -> (
      match pick_ready t with
      | Some job -> Task_job job
      | None -> if t.busy_loop then Filler else Idle)

let consume_bottom t ~elapsed item =
  if elapsed < 0 then invalid_arg "Guest.consume: negative elapsed";
  if elapsed > item.Irq_queue.remaining then
    invalid_arg "Guest.consume: over-attribution to bottom handler";
  item.Irq_queue.remaining <- Cycles.( - ) item.Irq_queue.remaining elapsed;
  t.cpu_time <- Cycles.( + ) t.cpu_time elapsed;
  if item.Irq_queue.remaining = 0 then begin
    let completed = Irq_queue.drop_head t.queue in
    if t.retain then t.completed_bottom <- completed :: t.completed_bottom
  end

let consume_task t ~now ~elapsed job =
  if elapsed < 0 then invalid_arg "Guest.consume: negative elapsed";
  if elapsed > job.Task.remaining then
    invalid_arg "Guest.consume: over-attribution to task job";
  job.Task.remaining <- Cycles.( - ) job.Task.remaining elapsed;
  t.cpu_time <- Cycles.( + ) t.cpu_time elapsed;
  if job.Task.remaining = 0 then begin
    t.ready <- List.filter (fun j -> j != job) t.ready;
    let completion =
      {
        Task.job_task = job.Task.task.Task.name;
        job_index = job.Task.index;
        released = job.Task.release;
        finished = now;
      }
    in
    if t.retain then t.completions <- completion :: t.completions;
    (* Hypervisor-mediated IPC: a completing job first drains its input
       port, then publishes its own output. *)
    let state =
      Array.to_list t.tasks
      |> List.find_opt (fun s -> s.spec == job.Task.task)
    in
    match state with
    | None -> ()
    | Some state ->
        (match state.in_port with
        | Some port -> ignore (Ipc.receive_all port ~now : Ipc.message list)
        | None -> ());
        (match state.out_port with
        | Some port ->
            ignore (Ipc.send port ~now ~sender:job.Task.task.Task.name : bool)
        | None -> ())
  end

let consume_filler t ~elapsed =
  if elapsed < 0 then invalid_arg "Guest.consume: negative elapsed";
  t.cpu_time <- Cycles.( + ) t.cpu_time elapsed

let consume_idle t ~elapsed =
  if elapsed < 0 then invalid_arg "Guest.consume: negative elapsed";
  t.idle_time <- Cycles.( + ) t.idle_time elapsed

let consume t ~now ~elapsed demand =
  match demand with
  | Bottom_handler item -> consume_bottom t ~elapsed item
  | Task_job job -> consume_task t ~now ~elapsed job
  | Filler -> consume_filler t ~elapsed
  | Idle -> consume_idle t ~elapsed

let take_completions t =
  let out = List.rev t.completions in
  t.completions <- [];
  out

let completed_bottom t = List.rev t.completed_bottom
let cpu_time t = t.cpu_time
let idle_time t = t.idle_time
let backlog t = List.length t.ready
