(** Para-virtualised guest operating system of one partition.

    Models the guest-visible behaviour of uC/OS-MMU's partition runtime:
    whenever the partition executes in unprivileged mode it first drains its
    interrupt queue through the bottom handler (steps (5)-(7) in Figure 2),
    then runs application tasks under fixed-priority preemptive scheduling,
    then an optional busy loop standing in for best-effort background work.

    The guest does not advance time itself; the hypervisor simulation
    attributes CPU segments to it via {!consume} and informs it of the
    passage of wall-clock time via {!advance_to} (job releases happen in
    absolute time whether or not the partition is scheduled). *)

type t

type policy =
  | Fixed_priority  (** Lower [Task.priority] value wins (default). *)
  | Edf
      (** Earliest deadline first, implicit deadlines (release + period);
          ties broken by release then job index. *)

type demand =
  | Bottom_handler of Irq_queue.item
      (** Head of the interrupt queue: always served first. *)
  | Task_job of Task.job  (** Highest-priority ready application job. *)
  | Filler  (** Busy-loop background work. *)
  | Idle  (** Nothing to run; the slot time is wasted (TDMA leaves unused
              capacity unused). *)

val create :
  ?tasks:Task.spec list ->
  ?busy_loop:bool ->
  ?ipc:Ipc.t ->
  ?policy:policy ->
  name:string ->
  unit ->
  t
(** [busy_loop] defaults to [true] — the experiment guests are busy loops.
    [ipc] is the system-wide port registry; required if any task produces or
    consumes a port (@raise Invalid_argument otherwise, or if a named port
    is not declared). *)

val name : t -> string

val queue : t -> Irq_queue.t
(** The partition's interrupt event queue (the hypervisor pushes here). *)

val busy_loop : t -> bool
(** Whether an otherwise-idle slot runs [Filler] (busy loop) or [Idle]. *)

val has_tasks : t -> bool
(** Whether the guest has any periodic task specs — when [false],
    {!advance_to} is a no-op and {!next_release} is [None], so the
    simulation skips the release machinery entirely.  (Aperiodic releases
    do not affect either; they surface through {!pick_ready}.) *)

val set_retain : t -> bool -> unit
(** When set to [false], {!take_completions} and {!completed_bottom}
    stop accumulating (always empty): streaming simulations over millions
    of events opt out of per-event retention.  Defaults to [true]. *)

val release_aperiodic : t -> spec:Task.spec -> now:Rthv_engine.Cycles.t -> unit
(** Release one job of an event-triggered task (e.g. signalled by a bottom
    handler).  The spec's [period]/[offset] are ignored for releases — each
    call creates exactly one job released [now]; [period] still serves as
    the implicit deadline for reporting.  The job competes under the guest's
    scheduling policy like any other. *)

val advance_to : t -> Rthv_engine.Cycles.t -> unit
(** Release all task jobs due at or before the given absolute time.  Must be
    called with non-decreasing times. *)

val next_release : t -> Rthv_engine.Cycles.t option
(** Earliest future job release, used by the simulation to bound execution
    segments.  [None] when the guest has no tasks. *)

val demand : t -> demand
(** What the guest would execute right now given its current state. *)

val pick_ready : t -> Task.job option
(** The ready job the guest's policy would run now, if any — the
    [Task_job] component of {!demand}, exposed so the simulation's
    compressed engine can resolve demand without boxing it. *)

val consume_bottom :
  t -> elapsed:Rthv_engine.Cycles.t -> Irq_queue.item -> unit
(** {!consume} specialised to the queue-head bottom handler; allocation
    free.  The item must be the queue head. *)

val consume_task :
  t -> now:Rthv_engine.Cycles.t -> elapsed:Rthv_engine.Cycles.t -> Task.job -> unit

val consume_filler : t -> elapsed:Rthv_engine.Cycles.t -> unit

val consume_idle : t -> elapsed:Rthv_engine.Cycles.t -> unit

val consume : t -> now:Rthv_engine.Cycles.t -> elapsed:Rthv_engine.Cycles.t -> demand -> unit
(** Attribute [elapsed] cycles of CPU ending at absolute time [now] to the
    given demand (which must be the one returned by {!demand} at segment
    start).  Completing a bottom handler or a job records it; the caller
    learns of completions via {!take_completions} / the queue head.
    @raise Invalid_argument if more work is attributed than remained. *)

val take_completions : t -> Task.completion list
(** Task jobs completed since the last call, oldest first. *)

val completed_bottom : t -> Irq_queue.item list
(** All bottom-handler items completed so far, oldest first.  Items are
    removed from the queue upon completion and retained here. *)

val cpu_time : t -> Rthv_engine.Cycles.t
(** Total CPU attributed to this guest (all demand kinds except [Idle]). *)

val idle_time : t -> Rthv_engine.Cycles.t

val backlog : t -> int
(** Released-but-unfinished task jobs (diagnoses guest overload). *)
