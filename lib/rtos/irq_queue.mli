(** Per-partition interrupt event queue.

    The hypervisor's top handler pushes an event into the subscriber
    partition's queue for every IRQ (step (4) in Figure 2 of the paper); the
    partition's bottom handler drains the queue in FIFO order.  The queue is
    used in all three handling modes (direct, interposed, delayed) "to
    prevent an out-of-order execution of IRQs".

    Items carry mutable remaining work so a bottom handler cut short by a
    slot boundary or an exhausted interposition budget resumes where it
    stopped. *)

type item = {
  irq : int;  (** Globally unique IRQ event id (monotone per system). *)
  line : int;  (** Interrupt-controller line of the source. *)
  arrival : Rthv_engine.Cycles.t;
      (** Top-handler activation timestamp — the latency measurement start,
          as in the paper's timestamp-timer setup. *)
  total : Rthv_engine.Cycles.t;  (** Bottom-handler work for this event. *)
  mutable remaining : Rthv_engine.Cycles.t;
}

type t

val create : unit -> t

val make_item :
  irq:int ->
  line:int ->
  arrival:Rthv_engine.Cycles.t ->
  work:Rthv_engine.Cycles.t ->
  item
(** @raise Invalid_argument if [work <= 0]. *)

val push : t -> item -> unit

val peek : t -> item option
(** Head of the queue (oldest pending event), without removing it. *)

val head : t -> item
(** Like {!peek} but without the [option] box, for allocation-free hot
    paths.  @raise Queue.Empty when the queue is empty — guard with
    {!is_empty}. *)

val drop_head : t -> item
(** Remove and return the head.  @raise Invalid_argument when empty or when
    the head still has remaining work (completion is the only legal reason
    to drop). *)

val is_empty : t -> bool

val length : t -> int

val pending_work : t -> Rthv_engine.Cycles.t
(** Sum of remaining work over all queued items. *)

val max_observed_length : t -> int
(** High-water mark of the queue length, for overload diagnostics. *)

val to_list : t -> item list
(** FIFO-order snapshot, head first. *)
