module Cycles = Rthv_engine.Cycles

type grant = {
  source_name : string;
  monitor : Distance_fn.t;
  c_bh_eff : Cycles.t;
  subscriber : int;
}

type partition_input = {
  p_index : int;
  p_name : string;
  slot : Cycles.t;
  tasks : Guest_sched.task list;
}

type verdict = {
  v_index : int;
  v_name : string;
  interference_budget : Cycles.t;
  utilisation_loss : float;
  task_results : (Guest_sched.task * (Busy_window.result, string) result) list;
  schedulable : bool;
}

type t = {
  cycle : Cycles.t;
  c_ctx : Cycles.t;
  grants : grant list;
  verdicts : verdict list;
  holds : bool;
}

let analyse_curves ~cycle ~c_ctx ~partitions ~interference ~carry_in
    ~utilisation_loss =
  List.map
    (fun p ->
      let slot_eff = Cycles.( - ) p.slot c_ctx in
      let budget = Cycles.( + ) (interference p.slot) carry_in in
      if slot_eff <= 0 then
        {
          v_index = p.p_index;
          v_name = p.p_name;
          interference_budget = budget;
          utilisation_loss;
          task_results =
            List.map (fun t -> (t, Error "slot shorter than C_ctx")) p.tasks;
          schedulable = false;
        }
      else begin
        let tdma = Tdma_interference.make ~cycle ~slot:slot_eff in
        let task_results =
          Guest_sched.analyse ~tdma ~interference ~blocking:carry_in p.tasks
        in
        let schedulable =
          List.for_all
            (fun ((task : Guest_sched.task), result) ->
              match result with
              | Ok r -> r.Busy_window.response_time <= task.Guest_sched.period
              | Error _ -> false)
            task_results
        in
        {
          v_index = p.p_index;
          v_name = p.p_name;
          interference_budget = budget;
          utilisation_loss;
          task_results;
          schedulable;
        }
      end)
    partitions

let check ~cycle ~c_ctx ~partitions ~grants =
  let curves =
    List.map
      (fun grant ->
        Independence.interposed_bound ~monitor:grant.monitor
          ~c_bh_eff:grant.c_bh_eff)
      grants
  in
  let interference = Independence.sum curves in
  let carry_in =
    List.fold_left (fun acc g -> Cycles.max acc g.c_bh_eff) 0 grants
  in
  let utilisation_loss =
    List.fold_left
      (fun acc g ->
        acc
        +. Independence.utilisation_loss ~monitor:g.monitor
             ~c_bh_eff:g.c_bh_eff)
      0. grants
  in
  let verdicts =
    analyse_curves ~cycle ~c_ctx ~partitions ~interference ~carry_in
      ~utilisation_loss
  in
  {
    cycle;
    c_ctx;
    grants;
    verdicts;
    holds = List.for_all (fun v -> v.schedulable) verdicts;
  }

let pp ppf t =
  Format.fprintf ppf
    "sufficient temporal independence certificate (T_TDMA = %a)@." Cycles.pp
    t.cycle;
  Format.fprintf ppf "grants:@.";
  List.iter
    (fun g ->
      Format.fprintf ppf "  %-12s monitor %a, C'_BH = %a (subscriber p%d)@."
        g.source_name Distance_fn.pp g.monitor Cycles.pp g.c_bh_eff
        g.subscriber)
    t.grants;
  List.iter
    (fun v ->
      Format.fprintf ppf
        "partition %d (%s): b_Ip = %a per slot, %.2f%% long-term — %s@."
        v.v_index v.v_name Cycles.pp v.interference_budget
        (100. *. v.utilisation_loss)
        (if v.schedulable then "SCHEDULABLE" else "NOT SCHEDULABLE");
      List.iter
        (fun ((task : Guest_sched.task), result) ->
          match result with
          | Ok r ->
              Format.fprintf ppf "    %-12s R = %a (T = %a)%s@."
                task.Guest_sched.name Cycles.pp r.Busy_window.response_time
                Cycles.pp task.Guest_sched.period
                (if r.Busy_window.response_time <= task.Guest_sched.period
                 then ""
                 else "  ** DEADLINE MISS **")
          | Error msg ->
              Format.fprintf ppf "    %-12s %s@." task.Guest_sched.name msg)
        v.task_results)
    t.verdicts;
  Format.fprintf ppf "certificate %s@."
    (if t.holds then "HOLDS" else "DOES NOT HOLD")
