module Cycles = Rthv_engine.Cycles
module Sink = Rthv_obs.Sink
module Labels = Rthv_obs.Labels
module Prof = Rthv_obs.Prof

(* Fixed-point phase for the profiler; convergence telemetry goes through
   the sink as gauges (iteration counts, final residual, explored q). *)
let ph_busy_window = Prof.phase "busy_window"

type outcome = Converged of Cycles.t | Diverged

type result = {
  response_time : Cycles.t;
  q_max : int;
  busy_windows : (int * Cycles.t) list;
  critical_q : int;
}

(* A few simulated hours at 200 MHz; any busy window that long means the
   resource is overloaded for every practical configuration in this repo. *)
let ceiling = 1_000_000 * Cycles.of_ms 1

(* Iteration cap: every genuine schedulability fixed point jumps to the next
   activation boundary per step, so well-formed systems converge in far
   fewer steps; a slow linear crawl towards the ceiling is an overload. *)
let max_iterations = 100_000

(* Convergence statistics of one fixed-point run, written into a caller-
   provided record so the iteration itself stays closure- and option-free
   (the per-call cost is gated to the word by the bench diff). *)
type fix_stats = { mutable fs_steps : int; mutable fs_residual : int }

let run_fixed_point stats ~q ~wcet ~interference =
  if q < 1 then invalid_arg "Busy_window.fixed_point: q < 1";
  if wcet < 0 then invalid_arg "Busy_window.fixed_point: negative wcet";
  let base = q * wcet in
  let rec iterate steps w =
    if w > ceiling || steps > max_iterations then begin
      stats.fs_steps <- steps;
      Diverged
    end
    else begin
      let w' = Cycles.( + ) base (interference w) in
      if w' = w then begin
        stats.fs_steps <- steps;
        stats.fs_residual <- 0;
        Converged w
      end
      else if w' < w then begin
        (* A non-monotone interference function shrank the window; the least
           fixed point is still bounded by w, so accept w.  The residual is
           the final contraction — nonzero only on this inexact exit. *)
        stats.fs_steps <- steps;
        stats.fs_residual <- Cycles.( - ) w w';
        Converged w
      end
      else iterate (steps + 1) w'
    end
  in
  iterate 0 base

let fixed_point ?steps ?residual ~q ~wcet ~interference () =
  let stats = { fs_steps = 0; fs_residual = 0 } in
  let outcome = run_fixed_point stats ~q ~wcet ~interference in
  (match steps with Some r -> r := stats.fs_steps | None -> ());
  (match residual with Some r -> r := stats.fs_residual | None -> ());
  outcome

let response_time ~wcet ~delta ~interference ?(max_q = 4096) () =
  let prof = Prof.installed () in
  Prof.enter prof ph_busy_window;
  let total_steps = ref 0 in
  let stats = { fs_steps = 0; fs_residual = 0 } in
  let rec explore q acc =
    if q > max_q then
      Error
        (Printf.sprintf
           "busy period still open after %d activations (overload?)" max_q)
    else begin
      let outcome = run_fixed_point stats ~q ~wcet ~interference in
      total_steps := !total_steps + stats.fs_steps;
      match outcome with
      | Diverged -> Error "busy window diverged: resource overloaded"
      | Converged w ->
          let acc = (q, w) :: acc in
          (* Equation (4): the (q+1)-th activation belongs to the same busy
             period iff it arrives no later than the q-event busy time. *)
          if delta (q + 1) <= w then explore (q + 1) acc
          else Ok (List.rev acc)
    end
  in
  let result =
    match explore 1 [] with
    | Error _ as e -> e
    | Ok busy_windows ->
        let response_time, critical_q =
          List.fold_left
            (fun (best, best_q) (q, w) ->
              let r = Cycles.( - ) w (delta q) in
              if r > best then (r, q) else (best, best_q))
            (0, 1) busy_windows
        in
        let q_max = List.length busy_windows in
        Ok { response_time; q_max; busy_windows; critical_q }
  in
  if Sink.active () then begin
    Sink.gauge "rthv_busy_window_iterations" Labels.empty
      (float_of_int !total_steps);
    Sink.gauge "rthv_busy_window_residual_cycles" Labels.empty
      (float_of_int stats.fs_residual);
    match result with
    | Ok r ->
        Sink.gauge "rthv_busy_window_q_max" Labels.empty (float_of_int r.q_max)
    | Error _ -> ()
  end;
  Prof.leave prof;
  result

let utilisation ~contributions =
  List.fold_left (fun acc (rate, wcet) -> acc +. (rate *. wcet)) 0. contributions
