module Cycles = Rthv_engine.Cycles

type t = { entries : Cycles.t array }

(* Sentinel for "no distance learned yet": large enough to never be met by a
   real trace, small enough that sums of a few of them cannot overflow. *)
let huge = max_int / 4

let length t = Array.length t.entries
let entries t = Array.copy t.entries

let normalise entries =
  let n = Array.length entries in
  let out = Array.make n 0 in
  let running_max = ref 0 in
  for i = 0 to n - 1 do
    let v = Stdlib.max 0 entries.(i) in
    running_max := Stdlib.max !running_max v;
    out.(i) <- !running_max
  done;
  out

let of_entries entries =
  if Array.length entries = 0 then
    invalid_arg "Distance_fn.of_entries: empty array";
  { entries = normalise entries }

let d_min d = of_entries [| d |]

let finite t = Array.for_all (fun e -> e < huge) t.entries

let unbounded ~l =
  if l <= 0 then invalid_arg "Distance_fn.unbounded: l must be positive";
  { entries = Array.make l 0 }

let delta t q =
  if q < 0 then invalid_arg "Distance_fn.delta: negative q"
  else if q <= 1 then 0
  else begin
    let l = Array.length t.entries in
    if q - 2 < l then t.entries.(q - 2)
    else begin
      (* Superadditive extension in closed form: peel off k complete chunks
         of l gaps (each worth entries.(l-1)) until the remainder r lands in
         the stored horizon, i.e. delta(q) = k*entries.(l-1) + delta(r) with
         r = q - k*l in [2, l+1]. *)
      let k = (q - 2) / l in
      let r = q - (k * l) in
      let rest = if r <= 1 then 0 else t.entries.(r - 2) in
      Cycles.( + ) (Cycles.( * ) t.entries.(l - 1) k) rest
    end
  end

let eta_plus t dt =
  if dt <= 0 then 0
  else begin
    let l = Array.length t.entries in
    if t.entries.(l - 1) = 0 then
      failwith "Distance_fn.eta_plus: degenerate function admits unbounded load";
    (* delta is non-decreasing and unbounded here; find max q with
       delta q < dt by doubling then binary search. *)
    let rec find_hi hi = if delta t hi >= dt then hi else find_hi (hi * 2) in
    let hi = find_hi 2 in
    (* Invariant: delta lo < dt <= delta hi. *)
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if delta t mid < dt then bisect mid hi else bisect lo mid
      end
    in
    bisect 1 hi
  end

let conforms t timestamps =
  let ts = Array.of_list timestamps in
  let n = Array.length ts in
  let l = Array.length t.entries in
  let ok = ref true in
  for j = 1 to n - 1 do
    let i_min = Stdlib.max 0 (j - l) in
    for i = i_min to j - 1 do
      let span = Cycles.( - ) ts.(j) ts.(i) in
      if span < delta t (j - i + 1) then ok := false
    done
  done;
  !ok

let of_trace ~l timestamps =
  if l <= 0 then invalid_arg "Distance_fn.of_trace: l must be positive";
  let entries = Array.make l huge in
  let tracebuffer = Array.make l None in
  let learn ts =
    (* Algorithm 1: compare against the last l timestamps, then shift. *)
    for i = 0 to l - 1 do
      match tracebuffer.(i) with
      | None -> ()
      | Some previous ->
          let distance = Cycles.( - ) ts previous in
          if distance < entries.(i) then entries.(i) <- distance
    done;
    for i = l - 1 downto 1 do
      tracebuffer.(i) <- tracebuffer.(i - 1)
    done;
    tracebuffer.(0) <- Some ts
  in
  List.iter learn timestamps;
  { entries = normalise entries }

let adjust_to_bound ~learned ~bound =
  if length learned <> length bound then
    invalid_arg "Distance_fn.adjust_to_bound: length mismatch";
  let entries =
    Array.mapi
      (fun i v -> Stdlib.max v bound.entries.(i))
      learned.entries
  in
  { entries = normalise entries }

let scale_load t ~factor =
  if factor <= 0. then invalid_arg "Distance_fn.scale_load: factor <= 0";
  let scale v =
    let scaled = float_of_int v /. factor in
    if scaled >= float_of_int huge then huge
    else int_of_float (Float.round scaled)
  in
  { entries = normalise (Array.map scale t.entries) }

let long_term_rate t =
  let l = Array.length t.entries in
  let span = t.entries.(l - 1) in
  if span = 0 then infinity else float_of_int l /. float_of_int span

let pp ppf t =
  Format.fprintf ppf "delta^-[%d]{" (Array.length t.entries);
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      if v >= huge then Format.fprintf ppf "_" else Cycles.pp ppf v)
    t.entries;
  Format.fprintf ppf "}"

let equal a b = a.entries = b.entries
