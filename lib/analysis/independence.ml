module Cycles = Rthv_engine.Cycles

type interference_curve = Cycles.t -> Cycles.t

let isolated _dt = 0

let interposed_bound ~monitor ~c_bh_eff dt =
  Cycles.( * ) c_bh_eff (Distance_fn.eta_plus monitor dt)

let d_min_bound ~d_min ~c_bh_eff =
  interposed_bound ~monitor:(Distance_fn.d_min d_min) ~c_bh_eff

let token_bucket_bound ~capacity ~refill ~c_bh_eff dt =
  if capacity < 1 || refill < 1 then
    invalid_arg "Independence.token_bucket_bound: bad bucket parameters";
  if dt <= 0 then 0
  else Cycles.( * ) c_bh_eff (capacity + (dt / refill))

let budget_bound ~per_cycle ~cycle ~c_bh_eff dt =
  if per_cycle < 1 || cycle < 1 then
    invalid_arg "Independence.budget_bound: bad budget parameters";
  if dt <= 0 then 0
  else
    (* Admissions are counted per aligned window of length [cycle] and capped
       at [per_cycle].  A half-open interval of length dt overlaps at most
       floor((dt-1)/cycle) + 2 such windows (one partial window at each end),
       so the admitted count is affine in dt like the token bucket's. *)
    Cycles.( * ) c_bh_eff (Cycles.( * ) per_cycle (((dt - 1) / cycle) + 2))

let sum curves dt =
  List.fold_left (fun acc curve -> Cycles.( + ) acc (curve dt)) 0 curves

let is_sufficient ~interference ~budget ~windows =
  List.for_all (fun dt -> interference dt <= budget dt) windows

let utilisation_loss ~monitor ~c_bh_eff =
  Distance_fn.long_term_rate monitor *. float_of_int c_bh_eff

let max_slot_loss ~monitor ~c_bh_eff ~slot =
  (* Equation (14) over the slot, plus one carry-in job admitted just before
     the slot begins whose budget spills into it. *)
  Cycles.( + ) (interposed_bound ~monitor ~c_bh_eff slot) c_bh_eff

let required_d_min ~c_bh_eff ~max_utilisation =
  if max_utilisation <= 0. then
    invalid_arg "Independence.required_d_min: max_utilisation <= 0";
  int_of_float (Float.ceil (float_of_int c_bh_eff /. max_utilisation))
