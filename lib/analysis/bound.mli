(** Policy-to-bound dispatch: which latency bound and interference curve the
    analysis owes each admission policy.

    The simulator core routes IRQs through pluggable admission policies
    ({!Rthv_core.Admission}); this module is the analysis-side mirror.  A
    {!policy} descriptor states what is statically known about a policy's
    admitted stream, and the dispatchers below select the matching paper
    equation: the eq.-(11)/(12) baseline, the eq.-(16) interposed bound, and
    the eq.-(14)-style interference curve.  [Rthv_check] maps configuration
    shaping onto descriptors once, so the linter, the trace oracle and the
    headroom gate all draw from the same dispatch. *)

type policy =
  | Unshaped  (** Original top handler (Figure 4a): never interposes. *)
  | Monitored of Distance_fn.t
      (** delta^- monitor: the admitted stream conforms to the condition by
          construction, and a conforming input stream is admitted in full. *)
  | Bucketed of { capacity : int; refill : Rthv_engine.Cycles.t }
      (** Token-bucket throttle: admissions are rate-limited but carry no
          distance condition. *)
  | Budgeted of { per_cycle : int; cycle : Rthv_engine.Cycles.t }
      (** Per-source interposition budget: at most [per_cycle] admissions in
          each aligned window of length [cycle]. *)
  | Shaped_opaque
      (** Shaped, but nothing is statically known about the admitted stream
          (e.g. a self-learning monitor without a load bound). *)
  | Composite of policy list
      (** Admission requires every component's consent. *)

val shaped : policy -> bool
(** The source runs the modified top handler (the monitoring function's
    C_Mon applies to its activations). *)

val condition : policy -> Distance_fn.t option
(** The statically known delta^- envelope of the {e admitted} stream — what
    the trace oracle's RTHV102 and the certificate's eq.-(14) grants rely
    on.  Sound because admission commits into the monitor's history, so the
    admitted stream conforms by construction (composites inherit their
    monitored component's envelope). *)

val per_instance_condition : policy -> Distance_fn.t option
(** The envelope under the stronger guarantee that {e every conforming
    activation is admitted} — the eq.-(16) gate.  For a composite this holds
    only when every rate-limiting component is provably vacuous against the
    monitored condition ({!vacuous_against}); otherwise a conforming
    activation can be denied, queue behind delayed predecessors, and exceed
    the per-instance bound. *)

val vacuous_against : Distance_fn.t -> policy -> bool
(** [vacuous_against fn p]: policy component [p] can never deny an
    activation that conforms to [fn].  A bucket is vacuous when
    [refill <= delta fn 2] (a token is always back before the condition
    admits again); a budget when [per_cycle >= eta^+_fn(cycle)]. *)

val interference : policy -> c_bh_eff:Rthv_engine.Cycles.t -> Independence.interference_curve option
(** The eq.-(14)-style interference curve of the policy's admitted stream,
    or [None] when no bound exists (unshaped, degenerate condition, opaque).
    Composites take the pointwise minimum of their components' curves — the
    admitted stream satisfies all of them. *)

val degenerate : Distance_fn.t -> bool
(** All entries zero: eta^+ is unbounded, eq. (14) yields no bound. *)

type latency_bound =
  | No_bound  (** The class cannot occur / has no analytic bound. *)
  | Baseline  (** Eq. (11)/(12), plain top handler. *)
  | Baseline_monitored
      (** Eq. (11)/(12) with C'_TH = C_TH + C_Mon (Section 5.1, case 2). *)
  | Interposed  (** Eq. (16). *)

val for_class :
  policy ->
  stream_conforms:(Distance_fn.t -> bool) ->
  [ `Direct | `Delayed | `Interposed ] ->
  latency_bound
(** Select the bound for a completion class.  Direct and delayed completions
    take the baseline (monitored when shaped — the monitoring function runs
    either way); interposed completions take eq. (16) only when the policy
    has a per-instance condition and the caller certifies the {e whole}
    input stream conforms to it, and fall back to the monitored baseline
    otherwise. *)

val compute :
  latency_bound ->
  tdma:Tdma_interference.t ->
  costs:Irq_latency.costs ->
  self:Irq_latency.source ->
  interferers:Irq_latency.source list ->
  (Busy_window.result, string) result
(** Evaluate the selected bound through {!Irq_latency}. *)

val pp : Format.formatter -> policy -> unit
