(** Busy-window response-time analysis (Lehoczky 1990, Tindell & Clark 1994,
    Schliecker et al. 2008).

    Implements equations (3)-(5) of the paper:

    - the q-event busy time W_i(q) as the least fixed point of
      [W(q) = q*C_i + sum_j C_j * eta_j(W(q))], generalised here to an
      arbitrary monotone interference function [I(dt)];
    - the number of activations to consider,
      [Q_i = max (n : forall q <= n, delta_i(q) <= W_i(q-1))];
    - the worst-case response time
      [R_i = max (q in 1..Q_i) (W_i(q) - delta_i(q))]. *)

type outcome =
  | Converged of Rthv_engine.Cycles.t
  | Diverged
      (** The fixed-point iteration exceeded the divergence ceiling: the
          resource is overloaded within the modelled horizon. *)

type result = {
  response_time : Rthv_engine.Cycles.t;
  q_max : int;  (** The Q_i of equation (4). *)
  busy_windows : (int * Rthv_engine.Cycles.t) list;
      (** (q, W(q)) for q in 1..q_max, for inspection and reporting. *)
  critical_q : int;  (** The q attaining the maximum in equation (5). *)
}

val ceiling : Rthv_engine.Cycles.t
(** Divergence ceiling for fixed-point iteration (a few simulated hours). *)

val fixed_point :
  ?steps:int ref ->
  ?residual:Rthv_engine.Cycles.t ref ->
  q:int ->
  wcet:Rthv_engine.Cycles.t ->
  interference:(Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t) ->
  unit ->
  outcome
(** [fixed_point ~q ~wcet ~interference ()] iterates
    [w := q*wcet + interference w] from [q*wcet] to convergence.
    [interference] must be monotone non-decreasing for the result to be the
    least fixed point.  When provided, [steps] receives the iteration count
    and [residual] the final step's contraction [w - w'] (zero on an exact
    fixed point; nonzero only when a non-monotone interference function
    shrank the window) — {!response_time} aggregates these into the
    [rthv_busy_window_*] gauges.  @raise Invalid_argument if [q < 1] or
    [wcet < 0]. *)

val response_time :
  wcet:Rthv_engine.Cycles.t ->
  delta:(int -> Rthv_engine.Cycles.t) ->
  interference:(Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t) ->
  ?max_q:int ->
  unit ->
  (result, string) Stdlib.result
(** Full analysis per equations (3)-(5).  [delta q] is the analysed source's
    own minimum-distance function; [interference] covers everything except
    the q in-flight activations' own [wcet].  [max_q] (default 4096) guards
    against pathological never-ending busy periods. *)

val utilisation :
  contributions:(float * float) list ->
  float
(** [utilisation ~contributions] with [(rate, wcet)] pairs in events/cycle
    and cycles: the long-term processor demand; > 1.0 means unschedulable. *)
