(** Sufficient-temporal-independence certificate.

    Packages the paper's certification argument into one checkable object:
    given the TDMA schedule, each partition's task set, and the set of
    interposition grants (monitored IRQ sources with their effective
    bottom-handler costs), verify for {e every} partition that

    + the interference it can suffer from all granted sources together is
      bounded (equation (14), summed, plus one carry-in), and
    + its task set remains schedulable under that bound (equation (2) with
      b_Ip instantiated, checked through {!Guest_sched}).

    The result is a per-partition verdict with the numbers a reviewer needs;
    [holds] is the conjunction.  This is what an ARINC653-style integrator
    would attach to a change request that enables interposition. *)

type grant = {
  source_name : string;
  monitor : Distance_fn.t;  (** The monitoring condition enforced. *)
  c_bh_eff : Rthv_engine.Cycles.t;  (** Equation (13) for that source. *)
  subscriber : int;  (** Interpositions never steal from the subscriber's
                         own slot budget in this model, but its top handlers
                         still run; the subscriber is reported, not
                         special-cased. *)
}

type partition_input = {
  p_index : int;
  p_name : string;
  slot : Rthv_engine.Cycles.t;
  tasks : Guest_sched.task list;
}

type verdict = {
  v_index : int;
  v_name : string;
  interference_budget : Rthv_engine.Cycles.t;
      (** b_Ip: worst interference in one slot window (sum of grants'
          eq.-(14) curves over the slot, plus one carry-in). *)
  utilisation_loss : float;
      (** Long-term processor share taken by the grants. *)
  task_results : (Guest_sched.task * (Busy_window.result, string) result) list;
  schedulable : bool;
}

type t = {
  cycle : Rthv_engine.Cycles.t;
  c_ctx : Rthv_engine.Cycles.t;
  grants : grant list;
  verdicts : verdict list;
  holds : bool;  (** Every partition schedulable under its budget. *)
}

val check :
  cycle:Rthv_engine.Cycles.t ->
  c_ctx:Rthv_engine.Cycles.t ->
  partitions:partition_input list ->
  grants:grant list ->
  t
(** Analyse every partition against the sum of all grants.  Each partition
    is analysed with its slot shortened by [c_ctx] (the slot-entry switch)
    and a blocking term of one largest [c_bh_eff] (carry-in). *)

val analyse_curves :
  cycle:Rthv_engine.Cycles.t ->
  c_ctx:Rthv_engine.Cycles.t ->
  partitions:partition_input list ->
  interference:Independence.interference_curve ->
  carry_in:Rthv_engine.Cycles.t ->
  utilisation_loss:float ->
  verdict list
(** The certification core behind {!check}, generalised from δ⁻ grants to an
    arbitrary summed interference curve — the entry point for policies whose
    admitted stream carries no distance condition (token buckets, per-cycle
    budgets, composites): pass the pointwise sum of their eq.-(14)-style
    curves ({!Rthv_analysis.Bound.interference}) plus one carry-in.  [check]
    is exactly [analyse_curves] applied to the grants' summed eq.-(14)
    curves; the abstract interpreter ([Rthv_check.Absint]) calls this with
    every shaped source's curve to close the bucket/budget blind spot of the
    grant-only certificate. *)

val pp : Format.formatter -> t -> unit
(** Human-readable certificate. *)
