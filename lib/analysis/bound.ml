module Cycles = Rthv_engine.Cycles
module DF = Distance_fn

type policy =
  | Unshaped
  | Monitored of DF.t
  | Bucketed of { capacity : int; refill : Cycles.t }
  | Budgeted of { per_cycle : int; cycle : Cycles.t }
  | Shaped_opaque
  | Composite of policy list

let rec shaped = function
  | Unshaped -> false
  | Monitored _ | Bucketed _ | Budgeted _ | Shaped_opaque -> true
  | Composite ps -> List.exists shaped ps

let degenerate fn = DF.delta fn (DF.length fn + 1) = 0

let rec condition = function
  | Monitored fn -> Some fn
  | Unshaped | Bucketed _ | Budgeted _ | Shaped_opaque -> None
  | Composite ps -> List.find_map condition ps

(* A rate-limiting component is vacuous relative to a delta^- condition when
   it can never deny an activation the condition admits: the condition's own
   admission rate already stays within the component's allowance. *)
let vacuous_against fn = function
  | Monitored _ | Unshaped -> true
  | Bucketed { capacity; refill } ->
      (* Each admission is at least delta^-(2) after the previous one; with
         refill <= delta^-(2) at least one token is back by then, so a
         bucket that starts full (capacity >= 1) never runs dry. *)
      capacity >= 1 && refill <= DF.delta fn 2
  | Budgeted { per_cycle; cycle } ->
      (* A conforming stream raises at most eta^+(cycle) activations in any
         window of one cycle, aligned windows included. *)
      (not (degenerate fn)) && per_cycle >= DF.eta_plus fn cycle
  | Shaped_opaque | Composite _ -> false

let per_instance_condition = function
  | Monitored fn -> Some fn
  | Unshaped | Bucketed _ | Budgeted _ | Shaped_opaque -> None
  | Composite ps -> (
      match List.find_map (function Monitored fn -> Some fn | _ -> None) ps with
      | None -> None
      | Some fn ->
          if
            List.for_all
              (function Monitored _ -> true | p -> vacuous_against fn p)
              ps
          then Some fn
          else None)

let pointwise_min a b dt = Cycles.min (a dt) (b dt)

let rec interference policy ~c_bh_eff =
  match policy with
  | Unshaped | Shaped_opaque -> None
  | Monitored fn ->
      if degenerate fn then None
      else Some (Independence.interposed_bound ~monitor:fn ~c_bh_eff)
  | Bucketed { capacity; refill } ->
      Some (Independence.token_bucket_bound ~capacity ~refill ~c_bh_eff)
  | Budgeted { per_cycle; cycle } ->
      Some (Independence.budget_bound ~per_cycle ~cycle ~c_bh_eff)
  | Composite ps ->
      (* Admitted activations satisfy every component, so every component's
         curve bounds the composite; the pointwise minimum is the tightest
         of them. *)
      List.fold_left
        (fun acc p ->
          match (acc, interference p ~c_bh_eff) with
          | None, c | c, None -> c
          | Some a, Some b -> Some (pointwise_min a b))
        None ps

type latency_bound = No_bound | Baseline | Baseline_monitored | Interposed

let for_class policy ~stream_conforms cls =
  match cls with
  | `Direct | `Delayed -> if shaped policy then Baseline_monitored else Baseline
  | `Interposed -> (
      if not (shaped policy) then No_bound
      else
        match per_instance_condition policy with
        | Some fn when stream_conforms fn -> Interposed
        | Some _ | None -> Baseline_monitored)

let compute bound ~tdma ~costs ~self ~interferers =
  match bound with
  | No_bound -> Error "source is not shaped: no interposed bound exists"
  | Baseline -> Irq_latency.baseline ~tdma ~self ~interferers ()
  | Baseline_monitored ->
      Irq_latency.baseline ~tdma ~self ~interferers ~monitoring:costs ()
  | Interposed -> Irq_latency.interposed ~costs ~self ~interferers ()

let rec pp ppf = function
  | Unshaped -> Format.fprintf ppf "unshaped"
  | Monitored fn -> Format.fprintf ppf "monitored %a" DF.pp fn
  | Bucketed { capacity; refill } ->
      Format.fprintf ppf "bucketed (capacity %d, refill %a)" capacity Cycles.pp
        refill
  | Budgeted { per_cycle; cycle } ->
      Format.fprintf ppf "budgeted (%d per %a)" per_cycle Cycles.pp cycle
  | Shaped_opaque -> Format.fprintf ppf "shaped (no static envelope)"
  | Composite ps ->
      Format.fprintf ppf "composite [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           pp)
        ps
