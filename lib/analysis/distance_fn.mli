(** Minimum-distance functions delta^-(q) with finite support.

    Following Neukirchner et al. (RTSS 2012) and Richter's event model, an
    l-entry minimum-distance function stores, for [i] in [0 .. l-1], the
    minimum observed (or permitted) temporal distance between an event and
    the event [i+1] positions before it — i.e. [entries.(i)] is a lower bound
    on delta^-(i+2), the minimum span of any [i+2] consecutive events.

    Beyond the stored horizon the function is extended by superadditive
    composition, which preserves the lower-bound property: the true distance
    function D satisfies D(n+m) >= D(n+1) + D(m+1) for a split of the gap
    sequence, so composing stored entries never over-estimates distances.

    Entries are normalised to be non-decreasing on construction (a span of
    more events can never be shorter than a span of fewer). *)

type t

val length : t -> int
(** Number of stored entries (the paper's [l]). *)

val entries : t -> Rthv_engine.Cycles.t array
(** A copy of the stored entries; [entries.(i)] bounds delta^-(i+2). *)

val of_entries : Rthv_engine.Cycles.t array -> t
(** Build from raw entries.  Negative entries are clamped to 0 and the array
    is made non-decreasing (each entry raised to the running maximum).
    @raise Invalid_argument on an empty array. *)

val d_min : Rthv_engine.Cycles.t -> t
(** The l=1 function used in Section 5 of the paper: consecutive events at
    least [d] apart. *)

val unbounded : l:int -> t
(** Entries all zero: permits any pattern (the "monitoring disabled"
    degenerate case). *)

val finite : t -> bool
(** Every entry is below the "no bound learned" sentinel that {!of_trace}
    leaves in never-observed positions.  A function with sentinel entries is
    not a usable monitoring condition: the superadditive extension of
    {!delta} sums entries, so sentinel-sized values overflow the eq.-(14)
    arithmetic.  {!Rthv_core.Config.validate} rejects such conditions. *)

val delta : t -> int -> Rthv_engine.Cycles.t
(** [delta t q] is the minimum span of [q] consecutive events.  [delta t 0]
    and [delta t 1] are 0.  Beyond the stored horizon the superadditive
    extension applies.  @raise Invalid_argument on negative [q]. *)

val eta_plus : t -> Rthv_engine.Cycles.t -> int
(** Dual upper arrival function: the maximum number of events in any
    half-open window of the given length, [max {q : delta t q < dt}].
    Returns 0 for non-positive windows.
    @raise Failure if the function is degenerate (all entries zero) and the
    window is positive, as the count would be unbounded. *)

val conforms : t -> Rthv_engine.Cycles.t list -> bool
(** [conforms t timestamps] checks that the (sorted ascending) timestamp list
    respects every stored distance: for all i, j with j - i <= length t,
    [ts.(j) - ts.(i) >= delta t (j - i + 1)]. *)

val of_trace : l:int -> Rthv_engine.Cycles.t list -> t
(** Learn a distance function from a sorted trace, exactly as Algorithm 1 of
    the paper: each entry is the minimum distance observed between an event
    and its (i+1)-th predecessor.  Events beyond the window [l] are ignored.
    Entries never observed stay at [max_int / 2] (effectively "no bound
    learned").  @raise Invalid_argument if [l <= 0]. *)

val adjust_to_bound : learned:t -> bound:t -> t
(** Algorithm 2 of the paper: raise every learned entry that is below the
    corresponding bound entry to the bound, so the resulting monitoring
    condition never admits more load than [bound] allows.  Both functions
    must have the same length. *)

val scale_load : t -> factor:float -> t
(** [scale_load t ~factor] produces the function that admits [factor] times
    the event load of [t]: every distance is divided by [factor] (so
    [factor < 1.] means larger distances, i.e. less admitted load — the
    paper's "25 % of the requested load" bound is [scale_load learned
    ~factor:0.25]).  @raise Invalid_argument if [factor <= 0.]. *)

val long_term_rate : t -> float
(** Admitted long-term event rate in events per cycle, [l / delta(l+1)]
    (infinite if the last entry is zero, returned as [infinity]). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
