(** Temporal isolation vs sufficient temporal independence — equations (1),
    (2) and (14) of the paper.

    A partition p with interferer set I_p suffers interference I_p.  Complete
    temporal isolation demands I_p = 0 (equation (1)); sufficient temporal
    independence, as required by IEC 61508-class standards, allows a bounded
    interference I_p <= b_Ip (equation (2)).  Interposed interrupt handling
    under a delta^- monitor yields the interference bound of equation (14):
    in any window dt, at most eta^+_monitor(dt) bottom handlers of effective
    cost C'_BH execute inside foreign slots. *)

type interference_curve = Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Maps a window size to a worst-case interference within that window. *)

val isolated : interference_curve
(** Equation (1): zero interference. *)

val interposed_bound :
  monitor:Distance_fn.t -> c_bh_eff:Rthv_engine.Cycles.t -> interference_curve
(** Equation (14), generalised to an l-entry monitoring condition:
    [fun dt -> eta^+_monitor(dt) * C'_BH].  For the l=1 [d_min] monitor this
    is exactly [ceil(dt / d_min) * C'_BH]. *)

val d_min_bound :
  d_min:Rthv_engine.Cycles.t ->
  c_bh_eff:Rthv_engine.Cycles.t ->
  interference_curve
(** Equation (14) verbatim. *)

val token_bucket_bound :
  capacity:int ->
  refill:Rthv_engine.Cycles.t ->
  c_bh_eff:Rthv_engine.Cycles.t ->
  interference_curve
(** Affine bound for the token-bucket throttle baseline: any window dt
    admits at most [capacity + dt/refill] interpositions.  At equal
    long-term rate this dominates the d_min bound whenever capacity > 1 —
    the burst allowance is exactly the extra interference a partition must
    absorb. *)

val budget_bound :
  per_cycle:int ->
  cycle:Rthv_engine.Cycles.t ->
  c_bh_eff:Rthv_engine.Cycles.t ->
  interference_curve
(** Interference bound for a per-cycle interposition budget: admissions are
    counted in aligned windows of length [cycle] and capped at [per_cycle]
    per window, so any half-open interval of length dt overlaps at most
    [floor((dt-1)/cycle) + 2] windows and admits at most [per_cycle] times
    that many interpositions.  Affine like the token-bucket curve; the
    window-straddling factor 2 is the burst a partition must absorb when a
    full budget at the end of one window abuts a full budget at the start of
    the next.  @raise Invalid_argument unless [per_cycle >= 1] and
    [cycle >= 1]. *)

val sum : interference_curve list -> interference_curve
(** Total interference from several independent interposing sources. *)

val is_sufficient :
  interference:interference_curve ->
  budget:interference_curve ->
  windows:Rthv_engine.Cycles.t list ->
  bool
(** Equation (2) checked on a list of window sizes: interference within
    budget everywhere. *)

val utilisation_loss :
  monitor:Distance_fn.t -> c_bh_eff:Rthv_engine.Cycles.t -> float
(** Long-term fraction of processor time stolen by interposed handlers:
    [rate(monitor) * C'_BH].  The system designer's headline number when
    granting a d_min. *)

val max_slot_loss :
  monitor:Distance_fn.t ->
  c_bh_eff:Rthv_engine.Cycles.t ->
  slot:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t
(** Worst-case time stolen from a single slot of the given length — what a
    partition's own schedulability analysis must absorb as b_Ip. *)

val required_d_min :
  c_bh_eff:Rthv_engine.Cycles.t ->
  max_utilisation:float ->
  Rthv_engine.Cycles.t
(** Smallest d_min such that the long-term utilisation loss stays at or below
    [max_utilisation].  @raise Invalid_argument if [max_utilisation <= 0]. *)
