(** Figure 6 reproduction: IRQ latency histograms over 15000 IRQs.

    Three scenarios from Section 6.1, each run at bottom-handler loads of
    1 %, 5 % and 10 % (5000 IRQs per load, cumulative histogram):

    - {!Unmonitored} — original top handler (Figure 6a);
    - {!Monitored} — modified top handler, l = 1 monitor with d_min = lambda,
      arbitrary exponential arrivals that may violate d_min (Figure 6b);
    - {!Monitored_conforming} — same monitor, interarrivals clamped to at
      least d_min so the condition always holds (Figure 6c). *)

type scenario = Unmonitored | Monitored | Monitored_conforming

type load_run = {
  load : float;
  mean_interarrival : Rthv_engine.Cycles.t;
  records : Rthv_core.Irq_record.t list;
  run_stats : Rthv_core.Hyp_sim.stats;
}

type result = {
  scenario : scenario;
  per_load : load_run list;
  histogram : Rthv_stats.Histogram.t;  (** Cumulative over all loads. *)
  latency : Rthv_stats.Summary.t;  (** In microseconds. *)
  n_direct : int;
  n_interposed : int;
  n_delayed : int;
  by_class : (Rthv_core.Irq_record.classification * Rthv_stats.Summary.t) list;
      (** Latency summary per handling class (classes with no IRQs
          omitted) — the per-legend view of the paper's histograms. *)
}

val scenario_name : scenario -> string

val run :
  ?seed:int ->
  ?count_per_load:int ->
  ?loads:float list ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profiler:Rthv_obs.Prof.t ->
  scenario ->
  result
(** Defaults: the paper's seed-reproducible 5000 IRQs at each of
    1/5/10 %.  The per-load runs are independent (load [i] is seeded
    [seed + i]) and shard across [pool] (default {!Rthv_par.Par.default_pool});
    any job count produces byte-identical results. *)

val run_all :
  ?seed:int ->
  ?count_per_load:int ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profiler:Rthv_obs.Prof.t ->
  unit ->
  result list
(** Figures 6a, 6b and 6c in order; all nine scenario x load simulations
    run as one sharded sweep. *)

val print : Format.formatter -> result -> unit
(** Paper-shaped report: classification shares, average/worst latency, and
    the latency histogram. *)

val histogram_csv : result -> string
(** The cumulative histogram as CSV ([bin_lo_us,bin_hi_us,count]; the
    overflow bin prints [inf] as its upper edge), for external plotting. *)
