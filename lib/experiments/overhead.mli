(** Section 6.2 reproduction: memory and runtime overhead of interposed
    interrupt handling.

    The static code/data sizes are properties of the authors' C
    implementation (gcc -O1 on ARM) and cannot be reproduced from an OCaml
    model; they are reported as the paper's modelled constants.  The dynamic
    quantities — monitor executions, scheduler manipulations, added context
    switches — are measured in the simulation by running the conforming
    scenario (d_min = lambda) twice on identical arrivals, with and without
    monitoring. *)

type static_model = {
  code_bytes_total : int;  (** 1120 B. *)
  code_bytes_scheduler : int;  (** 392 B: TDMA scheduler modification. *)
  code_bytes_top_handler : int;  (** 456 B: modified top handler. *)
  code_bytes_monitor : int;  (** 272 B: monitoring function. *)
  data_bytes : int;  (** 28 B of monitor state. *)
  c_mon_instr : int;
  c_sched_instr : int;
  ctx_invalidate_instr : int;
  ctx_writeback_cycles : int;
}

val paper_static : static_model

type load_measurement = {
  load : float;
  baseline_switches : int;
      (** TDMA slot switches (identical arrivals, monitoring off). *)
  monitored_slot_switches : int;
  interposition_switches : int;
  switch_increase_pct : float;
      (** Added switches relative to the baseline count. *)
  monitor_checks : int;
  admissions : int;
  denials : int;
}

type t = {
  static_model : static_model;
  per_load : load_measurement list;
  overall_increase_pct : float;
}

val run :
  ?seed:int ->
  ?count_per_load:int ->
  ?loads:float list ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profiler:Rthv_obs.Prof.t ->
  unit ->
  t
(** Each load's baseline/monitored pair is one sweep task, seeded
    [seed + i] for load index [i] and sharded across [pool]. *)

val print : Format.formatter -> t -> unit
