(** Ablation study over the design choices documented in DESIGN.md §5.

    Runs the conforming-arrival scenario (the regime where interposition's
    worst case is supposed to be TDMA-independent) under controlled
    variations: boundary semantics, context-switch cost, monitor depth, and
    the unmonitored baseline. *)

type variant = {
  label : string;
  platform : Rthv_hw.Platform.t;
  boundary : Rthv_core.Boundary_policy.t;
  shaping : Rthv_core.Config.shaping;
}

type measurement = {
  m_label : string;
  avg_us : float;
  p95_us : float;
  worst_us : float;
  ctx_per_irq : float;  (** All context switches per completed IRQ. *)
  m_stats : Rthv_core.Hyp_sim.stats;
}

val boundary_variants : d_min:Rthv_engine.Cycles.t -> variant list
(** Paper semantics (bounded overrun), strict TDMA cut, unmonitored. *)

val ctx_cost_variants : d_min:Rthv_engine.Cycles.t -> float list -> variant list
(** Monitored runs with the context-switch cost scaled by each factor. *)

val monitor_depth_variants : d_min:Rthv_engine.Cycles.t -> int list -> variant list
(** Monitored runs with linear l-entry envelopes of the given depths. *)

val admission_variants :
  d_min:Rthv_engine.Cycles.t -> cycle:Rthv_engine.Cycles.t -> variant list
(** One variant per admission-policy family at the same nominal long-term
    rate: unmonitored, the paper's d_min monitor, a per-cycle interposition
    budget (per_cycle = cycle / d_min admissions per aligned window), and
    the monitor composed with a capacity-1 token bucket.  [cycle] should be
    the TDMA cycle length of {!Params.partitions}. *)

val run :
  ?seed:int ->
  ?count:int ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  d_min:Rthv_engine.Cycles.t ->
  variant list ->
  measurement list
(** All variants on the same pre-generated conforming arrivals, sharded
    across [pool] (one simulation per variant, byte-identical at any job
    count). *)

val shaper_comparison :
  ?seed:int ->
  ?count:int ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  d_min:Rthv_engine.Cycles.t ->
  unit ->
  measurement list
(** The paper's delta^- monitor against the related-work token-bucket
    throttle (Regehr & Duongsaa) at equal long-term admission rate, on
    bursty arrivals (3-activation bursts): the bucket interposes whole
    bursts (lower average latency, burstier interference on other
    partitions), the distance monitor spreads admissions out.  Variants:
    unmonitored, d_min monitor, bucket capacity 1, bucket capacity 3. *)

val print : Format.formatter -> measurement list -> unit
