module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary

type row = {
  n_sources : int;
  d_min_per_source : Cycles.t;
  avg_latency_us : float;
  worst_latency_us : float;
  interposed_share : float;
  denial_rate : float;
  stolen_slot_max_us : float;
  union_bound_us : float;
}

let run ?(seed = Params.default_seed) ?(count_per_source = 1000)
    ?(total_load = 0.10) ~n_sources () =
  if n_sources < 1 then invalid_arg "Multi_source.run: need >= 1 source";
  let base = Params.mean_for_load total_load in
  let d_min = Cycles.( * ) base n_sources in
  let sources =
    List.init n_sources (fun i ->
        Config.source
          ~name:(Printf.sprintf "src%d" i)
          ~line:i
          ~subscriber:(i mod 2) (* alternate between the two app partitions *)
          ~c_th_us:Params.c_th_us ~c_bh_us:Params.c_bh_us
          ~interarrivals:
            (Gen.exponential_clamped ~seed:(seed + i) ~mean:d_min ~d_min
               ~count:count_per_source)
          ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
          ())
  in
  let config = Config.make ~partitions:Params.partitions ~sources () in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  let records = Hyp_sim.records sim in
  let stats = Hyp_sim.stats sim in
  let s = Summary.of_list (List.map Irq_record.latency_us records) in
  let foreign = stats.Hyp_sim.interposed + stats.Hyp_sim.delayed in
  let union_bound =
    let curve =
      Independence.sum
        (List.init n_sources (fun _ ->
             Independence.d_min_bound ~d_min ~c_bh_eff:Params.c_bh_eff))
    in
    Cycles.( + )
      (curve (Cycles.of_us Params.slot_app_us))
      Params.c_bh_eff
  in
  {
    n_sources;
    d_min_per_source = d_min;
    avg_latency_us = s.Summary.mean;
    worst_latency_us = s.Summary.max;
    interposed_share =
      (if foreign = 0 then 0.
       else float_of_int stats.Hyp_sim.interposed /. float_of_int foreign);
    denial_rate =
      (if stats.Hyp_sim.monitor_checks = 0 then 0.
       else
         float_of_int stats.Hyp_sim.denials
         /. float_of_int stats.Hyp_sim.monitor_checks);
    stolen_slot_max_us =
      Cycles.to_us (Array.fold_left Stdlib.max 0 stats.Hyp_sim.stolen_slot_max);
    union_bound_us = Cycles.to_us union_bound;
  }

let sweep ?seed ?count_per_source ?total_load ?pool ?metrics ns =
  Rthv_par.Par.map ?pool ?metrics
    (fun n_sources -> run ?seed ?count_per_source ?total_load ~n_sources ())
    ns

let print ppf rows =
  Format.fprintf ppf
    "%8s %12s %10s %10s %12s %10s %14s %12s@." "sources" "d_min" "avg" "worst"
    "interposed" "denials" "I_max/slot" "I_bound";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%8d %10.0fus %8.1fus %8.1fus %11.1f%% %9.2f%% %12.1fus %10.1fus@."
        r.n_sources
        (Cycles.to_us r.d_min_per_source)
        r.avg_latency_us r.worst_latency_us
        (100. *. r.interposed_share)
        (100. *. r.denial_rate)
        r.stolen_slot_max_us r.union_bound_us)
    rows
