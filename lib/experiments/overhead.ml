module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Distance_fn = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen

type static_model = {
  code_bytes_total : int;
  code_bytes_scheduler : int;
  code_bytes_top_handler : int;
  code_bytes_monitor : int;
  data_bytes : int;
  c_mon_instr : int;
  c_sched_instr : int;
  ctx_invalidate_instr : int;
  ctx_writeback_cycles : int;
}

let paper_static =
  {
    code_bytes_total = 1120;
    code_bytes_scheduler = 392;
    code_bytes_top_handler = 456;
    code_bytes_monitor = 272;
    data_bytes = 28;
    c_mon_instr = Params.platform.Rthv_hw.Platform.monitor_instr;
    c_sched_instr = Params.platform.Rthv_hw.Platform.sched_manip_instr;
    ctx_invalidate_instr =
      Params.platform.Rthv_hw.Platform.ctx.Rthv_hw.Ctx_cost.invalidate_instr;
    ctx_writeback_cycles =
      Params.platform.Rthv_hw.Platform.ctx.Rthv_hw.Ctx_cost.writeback_cycles;
  }

type load_measurement = {
  load : float;
  baseline_switches : int;
  monitored_slot_switches : int;
  interposition_switches : int;
  switch_increase_pct : float;
  monitor_checks : int;
  admissions : int;
  denials : int;
}

type t = {
  static_model : static_model;
  per_load : load_measurement list;
  overall_increase_pct : float;
}

let measure_load ~seed ~count load =
  let mean = Params.mean_for_load load in
  let d_min = mean in
  (* Identical pre-generated arrivals for both runs, conforming to d_min
     (the paper's scenario 2, where the ~10 % figure is reported). *)
  let interarrivals = Gen.exponential_clamped ~seed ~mean ~d_min ~count in
  let run shaping =
    let sim = Hyp_sim.create (Params.config ~interarrivals ~shaping) in
    Hyp_sim.run sim;
    Hyp_sim.stats sim
  in
  let baseline = run Config.No_shaping in
  let monitored = run (Config.Fixed_monitor (Distance_fn.d_min d_min)) in
  let base_switches = baseline.Hyp_sim.slot_switches in
  let added = monitored.Hyp_sim.interposition_switches in
  {
    load;
    baseline_switches = base_switches;
    monitored_slot_switches = monitored.Hyp_sim.slot_switches;
    interposition_switches = added;
    switch_increase_pct =
      (if base_switches = 0 then 0.
       else 100. *. float_of_int added /. float_of_int base_switches);
    monitor_checks = monitored.Hyp_sim.monitor_checks;
    admissions = monitored.Hyp_sim.admissions;
    denials = monitored.Hyp_sim.denials;
  }

let run ?(seed = Params.default_seed) ?(count_per_load = Params.irqs_per_load)
    ?(loads = Params.loads) ?pool ?metrics ?profiler () =
  let per_load =
    Rthv_par.Par.mapi ?pool ?metrics ?profile:profiler
      (fun i load ->
        measure_load
          ~seed:(Rthv_par.Par.derive_seed ~base:seed ~index:i)
          ~count:count_per_load load)
      loads
  in
  let base_total =
    List.fold_left (fun acc m -> acc + m.baseline_switches) 0 per_load
  in
  let added_total =
    List.fold_left (fun acc m -> acc + m.interposition_switches) 0 per_load
  in
  {
    static_model = paper_static;
    per_load;
    overall_increase_pct =
      (if base_total = 0 then 0.
       else 100. *. float_of_int added_total /. float_of_int base_total);
  }

let print ppf t =
  let s = t.static_model in
  Format.fprintf ppf "== Section 6.2: memory and runtime overhead ==@.";
  Format.fprintf ppf
    "static (paper's C implementation, gcc -O1, reported as modelled \
     constants):@.";
  Format.fprintf ppf
    "  code: %d B total (scheduler %d B, top handler %d B, monitor %d B); \
     data: %d B@."
    s.code_bytes_total s.code_bytes_scheduler s.code_bytes_top_handler
    s.code_bytes_monitor s.data_bytes;
  Format.fprintf ppf
    "  C_Mon = %d instr, C_sched = %d instr, ctx switch = %d instr + %d \
     cycles@."
    s.c_mon_instr s.c_sched_instr s.ctx_invalidate_instr
    s.ctx_writeback_cycles;
  Format.fprintf ppf
    "measured (simulation, scenario 2 arrivals, with vs without \
     monitoring):@.";
  Format.fprintf ppf
    "  %6s %10s %10s %10s %9s %8s %8s@." "load" "slot_sw" "added_sw"
    "increase" "checks" "admit" "deny";
  List.iter
    (fun m ->
      Format.fprintf ppf "  %5.1f%% %10d %10d %9.1f%% %9d %8d %8d@."
        (100. *. m.load) m.baseline_switches m.interposition_switches
        m.switch_increase_pct m.monitor_checks m.admissions m.denials)
    t.per_load;
  Format.fprintf ppf "  overall context-switch increase: %.1f%%@."
    t.overall_increase_pct
