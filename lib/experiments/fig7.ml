module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Distance_fn = Rthv_analysis.Distance_fn
module Ecu_trace = Rthv_workload.Ecu_trace
module Series = Rthv_stats.Series

type bound_spec = Unbounded | Load_fraction of float

type result = {
  spec : bound_spec;
  label : string;
  activations : int;
  learn_events : int;
  learn_avg_us : float;
  run_avg_us : float;
  series : (int * float) list;
  run_stats : Hyp_sim.stats;
}

let bound_label = function
  | Unbounded -> "a) unbounded"
  | Load_fraction f -> Printf.sprintf "%g%% load" (100. *. f)

let monitor_l = 5

let trace ~seed = Ecu_trace.generate ~seed Ecu_trace.default_profile

let take n list =
  let rec loop n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> loop (n - 1) (x :: acc) rest
  in
  loop n [] list

let run ?(seed = Params.default_seed) ?(profile = Ecu_trace.default_profile)
    ?(window = 500) spec =
  let timestamps = Ecu_trace.generate ~seed profile in
  let distances = Ecu_trace.to_distances timestamps in
  let activations = Array.length distances in
  let learn_events = activations / 10 in
  let bound =
    match spec with
    | Unbounded -> None
    | Load_fraction f ->
        (* The paper derives the bound from the recorded function; we learn
           it offline from the learning-phase prefix, exactly as the run's
           own learning phase will. *)
        let prefix = take learn_events timestamps in
        let learned = Distance_fn.of_trace ~l:monitor_l prefix in
        Some (Distance_fn.scale_load learned ~factor:f)
  in
  let shaping = Config.Self_learning { l = monitor_l; learn_events; bound } in
  let sim = Hyp_sim.create (Params.config ~interarrivals:distances ~shaping) in
  Hyp_sim.run sim;
  let records = Hyp_sim.records sim in
  let latencies =
    Array.of_list (List.map Irq_record.latency_us records)
  in
  let n = Array.length latencies in
  let running = Series.running_mean ~window latencies in
  let series = Series.downsample ~every:250 running in
  let learn_hi = Stdlib.min learn_events n in
  {
    spec;
    label = bound_label spec;
    activations;
    learn_events;
    learn_avg_us =
      (if learn_hi > 0 then Series.segment_mean latencies ~lo:0 ~hi:learn_hi
       else 0.);
    run_avg_us =
      (if n > learn_hi then Series.segment_mean latencies ~lo:learn_hi ~hi:n
       else 0.);
    series;
    run_stats = Hyp_sim.stats sim;
  }

let run_all ?seed ?profile ?pool ?metrics ?profiler () =
  (* The four bound specs replay the same trace independently: one sweep
     task per graph.  Each task derives nothing from its index — the seed is
     shared, as in the sequential code — so any job count is byte-identical. *)
  Rthv_par.Par.map ?pool ?metrics ?profile:profiler
    (fun spec -> run ?seed ?profile spec)
    [ Unbounded; Load_fraction 0.25; Load_fraction 0.125; Load_fraction 0.0625 ]

let print ppf r =
  Format.fprintf ppf
    "%-14s: %d activations, learn %d; avg latency learn %.0fus -> run %.0fus \
     (direct %d, interposed %d, delayed %d)@."
    r.label r.activations r.learn_events r.learn_avg_us r.run_avg_us
    r.run_stats.Hyp_sim.direct r.run_stats.Hyp_sim.interposed
    r.run_stats.Hyp_sim.delayed

let series_csv results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "event_index";
  List.iter
    (fun r ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (String.map (fun c -> if c = ',' then ';' else c) r.label))
    results;
  Buffer.add_char buf '\n';
  (match results with
  | [] -> ()
  | first :: _ ->
      List.iteri
        (fun row (idx, _) ->
          Buffer.add_string buf (string_of_int idx);
          List.iter
            (fun r ->
              Buffer.add_char buf ',';
              match List.nth_opt r.series row with
              | Some (_, v) -> Buffer.add_string buf (Printf.sprintf "%.1f" v)
              | None -> ())
            results;
          Buffer.add_char buf '\n')
        first.series);
  Buffer.contents buf

let print_series ppf results =
  match results with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "event";
      List.iter (fun r -> Format.fprintf ppf " %14s" r.label) results;
      Format.fprintf ppf "@.";
      List.iteri
        (fun row (idx, _) ->
          Format.fprintf ppf "%5d" idx;
          List.iter
            (fun r ->
              match List.nth_opt r.series row with
              | Some (_, v) -> Format.fprintf ppf " %12.0fus" v
              | None -> Format.fprintf ppf " %14s" "-")
            results;
          Format.fprintf ppf "@.")
        first.series
