(** Seed-robustness of the headline numbers.

    Every number in EXPERIMENTS.md comes from the default seed.  This module
    repeats a Figure-6 scenario across independent seeds and reports the
    spread of the per-seed average latencies, establishing that the headline
    comparisons (6a vs 6b vs 6c) are far outside run-to-run noise. *)

type row = {
  scenario : Fig6.scenario;
  seeds : int list;
  means_us : float list;  (** Per-seed average latency, seed order. *)
  mean_of_means_us : float;
  std_of_means_us : float;
  min_mean_us : float;
  max_mean_us : float;
}

val run :
  ?seeds:int list ->
  ?count_per_load:int ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  Fig6.scenario ->
  row
(** Defaults: seeds 1..10 and 1000 IRQs per load (lighter than the headline
    runs; the spread estimate does not need the full 5000).  One Fig6 run
    per seed, sharded across [pool]. *)

val run_all :
  ?seeds:int list ->
  ?count_per_load:int ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  unit ->
  row list

val print : Format.formatter -> row list -> unit
