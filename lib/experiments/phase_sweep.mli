(** Figure-3 quantified: IRQ latency as a function of the arrival's position
    in the TDMA cycle.

    The paper's Figure 3 illustrates why delayed handling is slow: an IRQ
    arriving right after its partition's slot waits almost a full cycle.
    This experiment fires exactly one IRQ at each phase offset within one
    TDMA cycle (many cycles into steady state) and records its latency,
    yielding the full latency profile:

    - unmonitored: a sawtooth — near-zero inside the subscriber's slot,
      climbing to T_TDMA - T_i just after it ends;
    - monitored with a permissive condition: flat at the interposed cost
      everywhere outside the slot.

    One simulation per sample keeps samples independent (no queueing between
    probes). *)

type sample = {
  phase : Rthv_engine.Cycles.t;  (** Offset within the TDMA cycle. *)
  latency_us : float;
  classification : Rthv_core.Irq_record.classification;
}

type result = {
  monitored : bool;
  samples : sample list;  (** Ascending phase. *)
  worst_us : float;
  mean_us : float;
}

val run :
  ?samples:int ->
  ?cycle_index:int ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  monitored:bool ->
  unit ->
  result
(** [samples] probe points across the cycle (default 140, i.e. one per
    100 us of the paper's 14 ms cycle); [cycle_index] picks which cycle the
    probes land in (default 3, well past start-up).  Probes are independent
    single-IRQ simulations and shard across [pool] with byte-identical
    results at any job count. *)

val print : Format.formatter -> result list -> unit
(** Table plus an ASCII plot of latency over phase for all results. *)
