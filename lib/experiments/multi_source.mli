(** Beyond the paper: how interposed handling scales with the number of
    monitored IRQ sources.

    The paper evaluates a single monitored source.  Real systems multiplex
    many (CAN, Ethernet, timers...).  Two effects appear as sources are
    added: admission collisions (the hypervisor runs at most one
    interposition at a time, so concurrent conforming activations get
    delayed) and accumulated interference (the per-partition bound becomes
    the sum of the sources' equation-(14) curves).

    The sweep keeps the {e total} interposed load constant at
    [total_load] by granting each of the k sources d_min = k * base, so the
    collision effect is isolated from the load effect. *)

type row = {
  n_sources : int;
  d_min_per_source : Rthv_engine.Cycles.t;
  avg_latency_us : float;
  worst_latency_us : float;
  interposed_share : float;  (** Fraction of foreign IRQs interposed. *)
  denial_rate : float;  (** Denials per monitor check. *)
  stolen_slot_max_us : float;  (** Worst per-slot interference measured. *)
  union_bound_us : float;  (** Sum of eq.-(14) curves + carry-in. *)
}

val run :
  ?seed:int ->
  ?count_per_source:int ->
  ?total_load:float ->
  n_sources:int ->
  unit ->
  row
(** One sweep point; [total_load] defaults to 10 %. *)

val sweep :
  ?seed:int ->
  ?count_per_source:int ->
  ?total_load:float ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  int list ->
  row list
(** One independent simulation per source count, sharded across [pool]
    (byte-identical at any job count). *)

val print : Format.formatter -> row list -> unit
