module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module DF = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary
module Platform = Rthv_hw.Platform
module Boundary_policy = Rthv_core.Boundary_policy

type variant = {
  label : string;
  platform : Platform.t;
  boundary : Boundary_policy.t;
  shaping : Config.shaping;
}

type measurement = {
  m_label : string;
  avg_us : float;
  p95_us : float;
  worst_us : float;
  ctx_per_irq : float;
  m_stats : Hyp_sim.stats;
}

let monitored d_min = Config.Fixed_monitor (DF.d_min d_min)

let boundary_variants ~d_min =
  [
    {
      label = "monitored (paper config)";
      platform = Params.platform;
      boundary = Boundary_policy.Finish_bottom_handler;
      shaping = monitored d_min;
    };
    {
      label = "monitored, strict TDMA cut";
      platform = Params.platform;
      boundary = Boundary_policy.Strict_cut;
      shaping = monitored d_min;
    };
    {
      label = "unmonitored baseline";
      platform = Params.platform;
      boundary = Boundary_policy.Finish_bottom_handler;
      shaping = Config.No_shaping;
    };
  ]

let ctx_cost_variants ~d_min factors =
  List.map
    (fun factor ->
      {
        label = Printf.sprintf "C_ctx x %.1f" factor;
        platform =
          {
            Params.platform with
            Platform.ctx =
              Rthv_hw.Ctx_cost.scaled Params.platform.Platform.ctx factor;
          };
        boundary = Boundary_policy.Finish_bottom_handler;
        shaping = monitored d_min;
      })
    factors

let monitor_depth_variants ~d_min depths =
  List.map
    (fun l ->
      let entries = Array.init l (fun i -> Cycles.( * ) d_min (i + 1)) in
      {
        label = Printf.sprintf "monitor l = %d" l;
        platform = Params.platform;
        boundary = Boundary_policy.Finish_bottom_handler;
        shaping = Config.Fixed_monitor (DF.of_entries entries);
      })
    depths

(* One variant per admission-policy family at the same nominal rate: the
   unmonitored baseline, the paper's d_min monitor, a per-cycle budget with
   the same long-term admission rate, and the monitor composed with a
   burst-capping bucket. *)
let admission_variants ~d_min ~cycle =
  let paper = Boundary_policy.Finish_bottom_handler in
  (* Admissions per cycle window at the monitor's long-term rate (at least
     one, or the budget could never admit anything). *)
  let per_cycle = Stdlib.max 1 (cycle / Stdlib.max 1 d_min) in
  [
    {
      label = "unmonitored baseline";
      platform = Params.platform;
      boundary = paper;
      shaping = Config.No_shaping;
    };
    {
      label = "d_min monitor";
      platform = Params.platform;
      boundary = paper;
      shaping = monitored d_min;
    };
    {
      label = Printf.sprintf "budget %d/cycle" per_cycle;
      platform = Params.platform;
      boundary = paper;
      shaping = Config.Budgeted { per_cycle };
    };
    {
      label = "monitor + bucket";
      platform = Params.platform;
      boundary = paper;
      shaping =
        Config.Monitor_and_bucket
          { fn = DF.d_min d_min; capacity = 1; refill = d_min };
    };
  ]

let run_on_arrivals ?pool ?metrics ~interarrivals variants =
  Rthv_par.Par.map ?pool ?metrics
    (fun variant ->
      let config =
        Config.make ~platform:variant.platform
          ~boundary:variant.boundary
          ~partitions:Params.partitions
          ~sources:[ Params.source ~interarrivals ~shaping:variant.shaping ]
          ()
      in
      let sim = Hyp_sim.create config in
      Hyp_sim.run sim;
      let stats = Hyp_sim.stats sim in
      let s =
        Summary.of_list
          (List.map Irq_record.latency_us (Hyp_sim.records sim))
      in
      {
        m_label = variant.label;
        avg_us = s.Summary.mean;
        p95_us = s.Summary.p95;
        worst_us = s.Summary.max;
        ctx_per_irq =
          float_of_int
            (stats.Hyp_sim.slot_switches + stats.Hyp_sim.interposition_switches)
          /. float_of_int (Stdlib.max 1 stats.Hyp_sim.completed_irqs);
        m_stats = stats;
      })
    variants

let run ?(seed = Params.default_seed) ?(count = 5000) ?pool ?metrics ~d_min
    variants =
  let interarrivals =
    Gen.exponential_clamped ~seed ~mean:d_min ~d_min ~count
  in
  run_on_arrivals ?pool ?metrics ~interarrivals variants

let shaper_comparison ?(seed = Params.default_seed) ?(count = 5000) ?pool
    ?metrics ~d_min () =
  (* Bursts of 3 activations, inner distance d_min/8, burst gaps sized so
     the long-term rate equals one activation per d_min. *)
  let interarrivals =
    Gen.bursty ~seed ~burst_len:3 ~inner:(d_min / 8)
      ~gap_mean:(Cycles.( * ) d_min 3) ~count
  in
  let variants =
    [
      {
        label = "unmonitored";
        platform = Params.platform;
        boundary = Boundary_policy.Finish_bottom_handler;
        shaping = Config.No_shaping;
      };
      {
        label = "d_min monitor";
        platform = Params.platform;
        boundary = Boundary_policy.Finish_bottom_handler;
        shaping = monitored d_min;
      };
      {
        label = "token bucket, capacity 1";
        platform = Params.platform;
        boundary = Boundary_policy.Finish_bottom_handler;
        shaping = Config.Token_bucket { capacity = 1; refill = d_min };
      };
      {
        label = "token bucket, capacity 3";
        platform = Params.platform;
        boundary = Boundary_policy.Finish_bottom_handler;
        shaping = Config.Token_bucket { capacity = 3; refill = d_min };
      };
    ]
  in
  run_on_arrivals ?pool ?metrics ~interarrivals variants

let print ppf measurements =
  List.iter
    (fun m ->
      Format.fprintf ppf
        "  %-28s avg %8.1fus  p95 %8.1fus  worst %8.1fus  ctx/irq %.2f@."
        m.m_label m.avg_us m.p95_us m.worst_us m.ctx_per_irq)
    measurements
