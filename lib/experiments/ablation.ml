module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module DF = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary
module Platform = Rthv_hw.Platform

type variant = {
  label : string;
  platform : Platform.t;
  finish_bh : bool;
  shaping : Config.shaping;
}

type measurement = {
  m_label : string;
  avg_us : float;
  p95_us : float;
  worst_us : float;
  ctx_per_irq : float;
  m_stats : Hyp_sim.stats;
}

let monitored d_min = Config.Fixed_monitor (DF.d_min d_min)

let boundary_variants ~d_min =
  [
    {
      label = "monitored (paper config)";
      platform = Params.platform;
      finish_bh = true;
      shaping = monitored d_min;
    };
    {
      label = "monitored, strict TDMA cut";
      platform = Params.platform;
      finish_bh = false;
      shaping = monitored d_min;
    };
    {
      label = "unmonitored baseline";
      platform = Params.platform;
      finish_bh = true;
      shaping = Config.No_shaping;
    };
  ]

let ctx_cost_variants ~d_min factors =
  List.map
    (fun factor ->
      {
        label = Printf.sprintf "C_ctx x %.1f" factor;
        platform =
          {
            Params.platform with
            Platform.ctx =
              Rthv_hw.Ctx_cost.scaled Params.platform.Platform.ctx factor;
          };
        finish_bh = true;
        shaping = monitored d_min;
      })
    factors

let monitor_depth_variants ~d_min depths =
  List.map
    (fun l ->
      let entries = Array.init l (fun i -> Cycles.( * ) d_min (i + 1)) in
      {
        label = Printf.sprintf "monitor l = %d" l;
        platform = Params.platform;
        finish_bh = true;
        shaping = Config.Fixed_monitor (DF.of_entries entries);
      })
    depths

let run_on_arrivals ?pool ?metrics ~interarrivals variants =
  Rthv_par.Par.map ?pool ?metrics
    (fun variant ->
      let config =
        Config.make ~platform:variant.platform
          ~finish_bh_at_boundary:variant.finish_bh
          ~partitions:Params.partitions
          ~sources:[ Params.source ~interarrivals ~shaping:variant.shaping ]
          ()
      in
      let sim = Hyp_sim.create config in
      Hyp_sim.run sim;
      let stats = Hyp_sim.stats sim in
      let s =
        Summary.of_list
          (List.map Irq_record.latency_us (Hyp_sim.records sim))
      in
      {
        m_label = variant.label;
        avg_us = s.Summary.mean;
        p95_us = s.Summary.p95;
        worst_us = s.Summary.max;
        ctx_per_irq =
          float_of_int
            (stats.Hyp_sim.slot_switches + stats.Hyp_sim.interposition_switches)
          /. float_of_int (Stdlib.max 1 stats.Hyp_sim.completed_irqs);
        m_stats = stats;
      })
    variants

let run ?(seed = Params.default_seed) ?(count = 5000) ?pool ?metrics ~d_min
    variants =
  let interarrivals =
    Gen.exponential_clamped ~seed ~mean:d_min ~d_min ~count
  in
  run_on_arrivals ?pool ?metrics ~interarrivals variants

let shaper_comparison ?(seed = Params.default_seed) ?(count = 5000) ?pool
    ?metrics ~d_min () =
  (* Bursts of 3 activations, inner distance d_min/8, burst gaps sized so
     the long-term rate equals one activation per d_min. *)
  let interarrivals =
    Gen.bursty ~seed ~burst_len:3 ~inner:(d_min / 8)
      ~gap_mean:(Cycles.( * ) d_min 3) ~count
  in
  let variants =
    [
      {
        label = "unmonitored";
        platform = Params.platform;
        finish_bh = true;
        shaping = Config.No_shaping;
      };
      {
        label = "d_min monitor";
        platform = Params.platform;
        finish_bh = true;
        shaping = monitored d_min;
      };
      {
        label = "token bucket, capacity 1";
        platform = Params.platform;
        finish_bh = true;
        shaping = Config.Token_bucket { capacity = 1; refill = d_min };
      };
      {
        label = "token bucket, capacity 3";
        platform = Params.platform;
        finish_bh = true;
        shaping = Config.Token_bucket { capacity = 3; refill = d_min };
      };
    ]
  in
  run_on_arrivals ?pool ?metrics ~interarrivals variants

let print ppf measurements =
  List.iter
    (fun m ->
      Format.fprintf ppf
        "  %-28s avg %8.1fus  p95 %8.1fus  worst %8.1fus  ctx/irq %.2f@."
        m.m_label m.avg_us m.p95_us m.worst_us m.ctx_per_irq)
    measurements
