module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module DF = Rthv_analysis.Distance_fn

type sample = {
  phase : Cycles.t;
  latency_us : float;
  classification : Irq_record.classification;
}

type result = {
  monitored : bool;
  samples : sample list;
  worst_us : float;
  mean_us : float;
}

let probe ~monitored ~arrival =
  let shaping =
    if monitored then Config.Fixed_monitor (DF.d_min (Cycles.of_us 1))
    else Config.No_shaping
  in
  let sim =
    Hyp_sim.create (Params.config ~interarrivals:[| arrival |] ~shaping)
  in
  Hyp_sim.run sim;
  match Hyp_sim.records sim with
  | [ record ] ->
      (Irq_record.latency_us record, record.Irq_record.classification)
  | records ->
      failwith
        (Printf.sprintf "phase probe produced %d records" (List.length records))

let run ?(samples = 140) ?(cycle_index = 3) ?pool ?metrics ~monitored () =
  if samples < 2 then invalid_arg "Phase_sweep.run: need >= 2 samples";
  if cycle_index < 0 then invalid_arg "Phase_sweep.run: negative cycle index";
  let cycle = Rthv_core.Tdma.cycle_length Params.tdma in
  let base = Cycles.( * ) cycle cycle_index in
  let step = cycle / samples in
  (* One self-contained simulation per probe point: the sweep's natural
     grain, sharded across the pool. *)
  let samples =
    Rthv_par.Par.init ?pool ?metrics samples (fun i ->
        let phase = Cycles.( * ) step i in
        let latency_us, classification =
          probe ~monitored ~arrival:(Cycles.( + ) base phase)
        in
        { phase; latency_us; classification })
  in
  let worst_us =
    List.fold_left (fun acc s -> Float.max acc s.latency_us) 0. samples
  in
  let mean_us =
    List.fold_left (fun acc s -> acc +. s.latency_us) 0. samples
    /. float_of_int (List.length samples)
  in
  { monitored; samples; worst_us; mean_us }

let print ppf results =
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-12s mean %8.1fus  worst %8.1fus over one TDMA cycle@."
        (if r.monitored then "monitored" else "unmonitored")
        r.mean_us r.worst_us)
    results;
  let glyph_of index = [| 'u'; 'm'; '3'; '4' |].(index mod 4) in
  let plots =
    List.mapi
      (fun index r ->
        Rthv_stats.Ascii_plot.series
          ~label:(if r.monitored then "monitored" else "unmonitored")
          ~glyph:(glyph_of index)
          (List.map
             (fun s -> (Cycles.to_us s.phase, s.latency_us))
             r.samples))
      results
  in
  Rthv_stats.Ascii_plot.render ~x_label:"arrival phase in the TDMA cycle (us)"
    ~y_label:"IRQ latency (us)" ppf plots
