(** Figure 7 reproduction (Appendix A): self-learning monitor on an
    automotive-ECU activation trace.

    The trace (~11000 activations) feeds the IRQ trigger timer.  The first
    10 % of activations train the l = 5 delta^-_Ip function (Algorithm 1,
    learning phase: only direct/delayed handling), after which the learned
    function — adjusted to a predefined upper bound delta^-_bIp via
    Algorithm 2 — governs interposition for the rest of the run.

    Four bounds are evaluated, as in the paper: (a) non-binding, and bounds
    admitting (b) 25 %, (c) 12.5 % and (d) 6.25 % of the recorded load. *)

type bound_spec =
  | Unbounded  (** Graph a: delta^-_bIp never binds. *)
  | Load_fraction of float
      (** Graphs b-d: the bound admits this fraction of the load recorded in
          the learning phase. *)

type result = {
  spec : bound_spec;
  label : string;
  activations : int;
  learn_events : int;
  learn_avg_us : float;  (** Average latency during the learning phase. *)
  run_avg_us : float;  (** Average latency in the monitored run phase. *)
  series : (int * float) list;
      (** (event index, running-average latency in us) — the Figure-7
          curve, downsampled. *)
  run_stats : Rthv_core.Hyp_sim.stats;
}

val bound_label : bound_spec -> string

val trace : seed:int -> Rthv_engine.Cycles.t list
(** The synthetic ECU trace used by all four runs. *)

val run :
  ?seed:int ->
  ?profile:Rthv_workload.Ecu_trace.profile ->
  ?window:int ->
  bound_spec ->
  result
(** [window] is the running-average window (default 500 events). *)

val run_all :
  ?seed:int ->
  ?profile:Rthv_workload.Ecu_trace.profile ->
  ?pool:Rthv_par.Par.pool ->
  ?metrics:Rthv_obs.Registry.t ->
  ?profiler:Rthv_obs.Prof.t ->
  unit ->
  result list
(** The paper's four graphs, a-d, as one sharded sweep (byte-identical at
    any job count). *)

val print : Format.formatter -> result -> unit

val print_series : Format.formatter -> result list -> unit
(** The four curves side by side, one row per sampled event index. *)

val series_csv : result list -> string
(** All running-average series as CSV ([event_index] plus one column per
    bound), for external plotting.  Rows follow the first result's sampled
    indices; a series missing a row prints an empty cell. *)
