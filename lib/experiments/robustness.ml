module Summary = Rthv_stats.Summary

type row = {
  scenario : Fig6.scenario;
  seeds : int list;
  means_us : float list;
  mean_of_means_us : float;
  std_of_means_us : float;
  min_mean_us : float;
  max_mean_us : float;
}

let default_seeds = List.init 10 (fun i -> i + 1)

let run ?(seeds = default_seeds) ?(count_per_load = 1000) ?pool ?metrics
    scenario =
  if seeds = [] then invalid_arg "Robustness.run: need at least one seed";
  (* One Fig6 run per seed; the outer sweep shards across the pool, the
     inner per-load sweep then runs sequentially (nested sweeps do not
     oversubscribe).  [?metrics] wraps only the outer tasks — the inner
     runs execute in the same domain and report through the installed
     per-task recorder. *)
  let means_us =
    Rthv_par.Par.map ?pool ?metrics
      (fun seed ->
        let result = Fig6.run ~seed ~count_per_load ?pool scenario in
        result.Fig6.latency.Summary.mean)
      seeds
  in
  let s = Summary.of_list means_us in
  {
    scenario;
    seeds;
    means_us;
    mean_of_means_us = s.Summary.mean;
    std_of_means_us = s.Summary.stddev;
    min_mean_us = s.Summary.min;
    max_mean_us = s.Summary.max;
  }

let run_all ?seeds ?count_per_load ?pool ?metrics () =
  List.map
    (fun scenario -> run ?seeds ?count_per_load ?pool ?metrics scenario)
    [ Fig6.Unmonitored; Fig6.Monitored; Fig6.Monitored_conforming ]

let print ppf rows =
  Format.fprintf ppf "%-50s %10s %8s %10s %10s (%d seeds)@." "scenario"
    "mean" "sd" "min" "max"
    (match rows with row :: _ -> List.length row.seeds | [] -> 0);
  List.iter
    (fun row ->
      Format.fprintf ppf "%-50s %8.0fus %6.0fus %8.0fus %8.0fus@."
        (Fig6.scenario_name row.scenario)
        row.mean_of_means_us row.std_of_means_us row.min_mean_us
        row.max_mean_us)
    rows
