module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Distance_fn = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen
module Histogram = Rthv_stats.Histogram
module Summary = Rthv_stats.Summary

type scenario = Unmonitored | Monitored | Monitored_conforming

type load_run = {
  load : float;
  mean_interarrival : Cycles.t;
  records : Irq_record.t list;
  run_stats : Hyp_sim.stats;
}

type result = {
  scenario : scenario;
  per_load : load_run list;
  histogram : Histogram.t;
  latency : Summary.t;
  n_direct : int;
  n_interposed : int;
  n_delayed : int;
  by_class : (Irq_record.classification * Summary.t) list;
}

let scenario_name = function
  | Unmonitored -> "fig6a: monitoring disabled"
  | Monitored -> "fig6b: monitoring enabled (d_min = lambda, violations occur)"
  | Monitored_conforming -> "fig6c: monitoring enabled, no violations"

let run_load ~seed ~count scenario load =
  let mean = Params.mean_for_load load in
  let d_min = mean in
  let interarrivals =
    match scenario with
    | Unmonitored | Monitored -> Gen.exponential ~seed ~mean ~count
    | Monitored_conforming ->
        Gen.exponential_clamped ~seed ~mean ~d_min ~count
  in
  let shaping =
    match scenario with
    | Unmonitored -> Config.No_shaping
    | Monitored | Monitored_conforming ->
        Config.Fixed_monitor (Distance_fn.d_min d_min)
  in
  let sim = Hyp_sim.create (Params.config ~interarrivals ~shaping) in
  Hyp_sim.run sim;
  {
    load;
    mean_interarrival = mean;
    records = Hyp_sim.records sim;
    run_stats = Hyp_sim.stats sim;
  }

let assemble scenario per_load =
  let histogram = Histogram.create ~bin_width_us:250. ~max_us:9000. in
  let latencies = ref [] in
  let direct = ref 0 and interposed = ref 0 and delayed = ref 0 in
  List.iter
    (fun lr ->
      direct := !direct + lr.run_stats.Hyp_sim.direct;
      interposed := !interposed + lr.run_stats.Hyp_sim.interposed;
      delayed := !delayed + lr.run_stats.Hyp_sim.delayed;
      List.iter
        (fun record ->
          let l = Irq_record.latency_us record in
          Histogram.add histogram l;
          latencies := l :: !latencies)
        lr.records)
    per_load;
  let by_class =
    List.filter_map
      (fun classification ->
        let of_class =
          List.concat_map
            (fun lr ->
              List.filter_map
                (fun r ->
                  if r.Irq_record.classification = classification then
                    Some (Irq_record.latency_us r)
                  else None)
                lr.records)
            per_load
        in
        if of_class = [] then None
        else Some (classification, Summary.of_list of_class))
      [ Irq_record.Direct; Irq_record.Interposed; Irq_record.Delayed ]
  in
  {
    scenario;
    per_load;
    histogram;
    latency = Summary.of_list !latencies;
    n_direct = !direct;
    n_interposed = !interposed;
    n_delayed = !delayed;
    by_class;
  }

let run ?(seed = Params.default_seed) ?(count_per_load = Params.irqs_per_load)
    ?(loads = Params.loads) ?pool ?metrics ?profiler scenario =
  let per_load =
    Rthv_par.Par.mapi ?pool ?metrics ?profile:profiler
      (fun i load ->
        run_load
          ~seed:(Rthv_par.Par.derive_seed ~base:seed ~index:i)
          ~count:count_per_load scenario load)
      loads
  in
  assemble scenario per_load

let scenarios = [ Unmonitored; Monitored; Monitored_conforming ]

let run_all ?(seed = Params.default_seed)
    ?(count_per_load = Params.irqs_per_load) ?pool ?metrics ?profiler () =
  (* Flatten the scenario x load grid into one sweep so all nine
     simulations shard across the pool at once (the 1 %-load runs simulate
     ~10x longer than the 10 % ones; chunked claiming balances them).  The
     per-task seed stays the sequential scheme: load index i -> seed + i,
     independent of the scenario. *)
  let loads = Params.loads in
  let tasks =
    List.concat_map
      (fun scenario -> List.mapi (fun i load -> (scenario, i, load)) loads)
      scenarios
  in
  let runs =
    Rthv_par.Par.map ?pool ?metrics ?profile:profiler
      (fun (scenario, i, load) ->
        ( scenario,
          run_load
            ~seed:(Rthv_par.Par.derive_seed ~base:seed ~index:i)
            ~count:count_per_load scenario load ))
      tasks
  in
  List.map
    (fun scenario ->
      assemble scenario
        (List.filter_map
           (fun (s, lr) -> if s = scenario then Some lr else None)
           runs))
    scenarios

let histogram_csv r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "bin_lo_us,bin_hi_us,count\n";
  List.iter
    (fun (lo, hi, count) ->
      Buffer.add_string buf
        (if hi = infinity then Printf.sprintf "%.0f,inf,%d\n" lo count
         else Printf.sprintf "%.0f,%.0f,%d\n" lo hi count))
    (Histogram.bins r.histogram);
  Buffer.contents buf

let print ppf r =
  let total = r.n_direct + r.n_interposed + r.n_delayed in
  let share n =
    if total = 0 then 0. else 100. *. float_of_int n /. float_of_int total
  in
  Format.fprintf ppf "== %s ==@." (scenario_name r.scenario);
  Format.fprintf ppf
    "IRQs: %d (direct %d = %.0f%%, interposed %d = %.0f%%, delayed %d = %.0f%%)@."
    total r.n_direct (share r.n_direct) r.n_interposed (share r.n_interposed)
    r.n_delayed (share r.n_delayed);
  Format.fprintf ppf
    "latency: avg %.0fus, p50 %.0fus, p95 %.0fus, worst %.0fus@."
    r.latency.Summary.mean r.latency.Summary.p50 r.latency.Summary.p95
    r.latency.Summary.max;
  List.iter
    (fun (classification, s) ->
      Format.fprintf ppf "  %-10s avg %7.0fus  worst %7.0fus@."
        (Irq_record.classification_name classification)
        s.Summary.mean s.Summary.max)
    r.by_class;
  List.iter
    (fun lr ->
      let s =
        Summary.of_list (List.map Irq_record.latency_us lr.records)
      in
      Format.fprintf ppf
        "  load %4.1f%%: lambda=%a avg=%.0fus worst=%.0fus ctx(slot=%d, interposition=%d)@."
        (100. *. lr.load) Cycles.pp lr.mean_interarrival s.Summary.mean
        s.Summary.max lr.run_stats.Hyp_sim.slot_switches
        lr.run_stats.Hyp_sim.interposition_switches)
    r.per_load;
  Format.fprintf ppf "histogram (250us bins, # scaled to fullest bin, log scale):@.";
  Histogram.render ~log_scale:true ppf r.histogram
