(* rthv_certify: check a sufficient-temporal-independence certificate from
   the command line.

   Example — two partitions with tasks, one interposition grant:
     rthv_certify --cycle-us 14000 --ctx-us 50 \
       --partition 'ctl:6000:attitude,12000,800;actuator,24000,1200' \
       --partition 'io:6000:' \
       --partition 'hk:2000:' \
       --grant 'nic:1544:154'

   Partition syntax:  NAME:SLOT_US:TASK(;TASK)*  with TASK = name,period_us,wcet_us
   Grant syntax:      NAME:DMIN_US:CBH_EFF_US *)

module Cycles = Rthv_engine.Cycles
module C = Rthv_analysis.Certificate
module GS = Rthv_analysis.Guest_sched
module DF = Rthv_analysis.Distance_fn

let parse_task spec =
  match String.split_on_char ',' spec with
  | [ name; period; wcet ] -> (
      match (int_of_string_opt period, int_of_string_opt wcet) with
      | Some period_us, Some wcet_us when period_us > 0 && wcet_us > 0 ->
          Ok
            {
              GS.name;
              period = Cycles.of_us period_us;
              wcet = Cycles.of_us wcet_us;
              priority = 0;
            }
      | _ -> Error (Printf.sprintf "bad task %S" spec))
  | _ -> Error (Printf.sprintf "bad task %S (want name,period_us,wcet_us)" spec)

let parse_partition index spec =
  match String.split_on_char ':' spec with
  | [ name; slot; tasks ] -> (
      match int_of_string_opt slot with
      | Some slot_us when slot_us > 0 ->
          let task_specs =
            List.filter (fun s -> s <> "") (String.split_on_char ';' tasks)
          in
          let rec parse_all acc = function
            | [] -> Ok (List.rev acc)
            | t :: rest -> (
                match parse_task t with
                | Ok task -> parse_all (task :: acc) rest
                | Error _ as e -> e)
          in
          (match parse_all [] task_specs with
          | Ok tasks ->
              Ok
                {
                  C.p_index = index;
                  p_name = name;
                  slot = Cycles.of_us slot_us;
                  tasks;
                }
          | Error msg -> Error msg)
      | _ -> Error (Printf.sprintf "bad slot in %S" spec))
  | _ ->
      Error (Printf.sprintf "bad partition %S (want name:slot_us:tasks)" spec)

let parse_grant spec =
  match String.split_on_char ':' spec with
  | [ name; d_min; c_bh_eff ] -> (
      match (int_of_string_opt d_min, int_of_string_opt c_bh_eff) with
      | Some d_min_us, Some c_bh_eff_us when d_min_us > 0 && c_bh_eff_us > 0 ->
          Ok
            {
              C.source_name = name;
              monitor = DF.d_min (Cycles.of_us d_min_us);
              c_bh_eff = Cycles.of_us c_bh_eff_us;
              subscriber = 0;
            }
      | _ -> Error (Printf.sprintf "bad grant %S" spec))
  | _ ->
      Error (Printf.sprintf "bad grant %S (want name:dmin_us:cbh_eff_us)" spec)

(* Machine-readable artifact (--json): the closed-form certificate in the
   same shape as the [closed_certificate] block of a full "rthv-cert/1"
   proof artifact (rthv_lint --certify), so integrator tooling parses one
   schema for both the CLI and the certified pipeline. *)
let cert_to_json (cert : C.t) =
  let module J = Rthv_obs.Json in
  let task_result_to_json (task, result) =
    J.Obj
      [
        ("task", J.String task.GS.name);
        ("period", J.Int task.GS.period);
        ("wcet", J.Int task.GS.wcet);
        ( "result",
          match result with
          | Ok r ->
              let module BW = Rthv_analysis.Busy_window in
              J.Obj
                [
                  ("response_time", J.Int r.BW.response_time);
                  ("q_max", J.Int r.BW.q_max);
                  ("met", J.Bool (r.BW.response_time <= task.GS.period));
                ]
          | Error e -> J.Obj [ ("diverged", J.String e) ] );
      ]
  in
  let verdict_to_json (v : C.verdict) =
    J.Obj
      [
        ("index", J.Int v.C.v_index);
        ("name", J.String v.C.v_name);
        ("interference_budget", J.Int v.C.interference_budget);
        ("utilisation_loss", J.Float v.C.utilisation_loss);
        ("tasks", J.List (List.map task_result_to_json v.C.task_results));
        ("schedulable", J.Bool v.C.schedulable);
      ]
  in
  let grant_to_json (g : C.grant) =
    J.Obj
      [
        ("source", J.String g.C.source_name);
        ("c_bh_eff", J.Int g.C.c_bh_eff);
        ("subscriber", J.Int g.C.subscriber);
        ("d_min_entries", J.List
           (List.map (fun d -> J.Int d)
              (Array.to_list (DF.entries g.C.monitor))));
      ]
  in
  J.Obj
    [
      ("schema", J.String "rthv-closed-cert/1");
      ("cycle", J.Int cert.C.cycle);
      ("c_ctx", J.Int cert.C.c_ctx);
      ("grants", J.List (List.map grant_to_json cert.C.grants));
      ("verdicts", J.List (List.map verdict_to_json cert.C.verdicts));
      ("holds", J.Bool cert.C.holds);
    ]

let main cycle_us ctx_us partition_specs grant_specs json =
  let rec parse_list f i acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match f i spec with
        | Ok v -> parse_list f (i + 1) (v :: acc) rest
        | Error msg -> Error msg)
  in
  match
    ( parse_list parse_partition 0 [] partition_specs,
      parse_list (fun _ s -> parse_grant s) 0 [] grant_specs )
  with
  | Error msg, _ | _, Error msg ->
      Format.eprintf "%s@." msg;
      1
  | Ok [], _ ->
      Format.eprintf "need at least one --partition@.";
      1
  | Ok partitions, Ok grants ->
      let declared =
        List.fold_left (fun acc p -> acc + p.C.slot) 0 partitions
      in
      let cycle = Cycles.of_us cycle_us in
      if declared <> cycle then begin
        Format.eprintf
          "slot lengths sum to %a but --cycle-us says %a@." Cycles.pp declared
          Cycles.pp cycle;
        1
      end
      else begin
        let cert =
          C.check ~cycle ~c_ctx:(Cycles.of_us ctx_us) ~partitions ~grants
        in
        if json then
          print_string (Rthv_obs.Json.to_string (cert_to_json cert) ^ "\n")
        else C.pp Format.std_formatter cert;
        if cert.C.holds then 0 else 2
      end

open Cmdliner

let cycle_us =
  Arg.(
    value & opt int 14_000
    & info [ "cycle-us" ] ~docv:"US" ~doc:"TDMA cycle length.")

let ctx_us =
  Arg.(
    value & opt int 50
    & info [ "ctx-us" ] ~docv:"US" ~doc:"Partition context-switch cost.")

let partitions =
  Arg.(
    value & opt_all string []
    & info [ "partition"; "p" ] ~docv:"NAME:SLOT_US:TASKS"
        ~doc:
          "Partition with its slot and ';'-separated tasks \
           (name,period_us,wcet_us).  Repeatable, in TDMA order.")

let grants =
  Arg.(
    value & opt_all string []
    & info [ "grant"; "g" ] ~docv:"NAME:DMIN_US:CBH_EFF_US"
        ~doc:"Interposition grant to audit.  Repeatable.")

let json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the certificate as a machine-readable JSON artifact \
           (schema $(b,rthv-closed-cert/1)) instead of the text report.")

let cmd =
  let doc =
    "audit sufficient temporal independence for a set of interposition \
     grants (Beckert et al., DAC 2014, equations (2) and (14))"
  in
  Cmd.v
    (Cmd.info "rthv_certify" ~doc ~exits:
       (Cmd.Exit.info 2 ~doc:"the certificate does not hold" :: Cmd.Exit.defaults))
    Term.(const main $ cycle_us $ ctx_us $ partitions $ grants $ json)

let () = exit (Cmd.eval' cmd)
