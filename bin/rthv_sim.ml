(* rthv_sim: run a configurable hypervisor simulation from the command line.

   Examples:
     rthv_sim --slots 6000,6000,2000 --subscriber 1 --mean-us 1544 \
              --monitor dmin --count 5000
     rthv_sim --monitor off --histogram
     rthv_sim --monitor learn --trace ecu --count 0         # ECU trace replay
     rthv_sim --experiment fig6b                            # paper experiment *)

module Cycles = Rthv_engine.Cycles
module Fast_forward = Rthv_engine.Fast_forward
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module DF = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen
module Ecu_trace = Rthv_workload.Ecu_trace
module Histogram = Rthv_stats.Histogram
module Summary = Rthv_stats.Summary

type monitor_kind =
  | Monitor_off
  | Monitor_dmin
  | Monitor_learn
  | Monitor_budget
  | Monitor_combo

let monitor_kind_conv =
  let parse = function
    | "off" -> Ok Monitor_off
    | "dmin" -> Ok Monitor_dmin
    | "learn" -> Ok Monitor_learn
    | "budget" -> Ok Monitor_budget
    | "combo" -> Ok Monitor_combo
    | s -> Error (`Msg (Printf.sprintf "unknown monitor kind %S" s))
  in
  let print ppf = function
    | Monitor_off -> Format.fprintf ppf "off"
    | Monitor_dmin -> Format.fprintf ppf "dmin"
    | Monitor_learn -> Format.fprintf ppf "learn"
    | Monitor_budget -> Format.fprintf ppf "budget"
    | Monitor_combo -> Format.fprintf ppf "combo"
  in
  Cmdliner.Arg.conv (parse, print)

let mode_conv =
  let parse s =
    match Fast_forward.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  let print ppf m = Format.pp_print_string ppf (Fast_forward.to_string m) in
  Cmdliner.Arg.conv (parse, print)

let build_interarrivals ~trace ~seed ~mean_us ~d_min_us ~count =
  match trace with
  | Some "ecu" ->
      Ecu_trace.to_distances
        (Ecu_trace.generate ~seed Ecu_trace.default_profile)
  | Some other -> failwith (Printf.sprintf "unknown trace %S (try: ecu)" other)
  | None ->
      let mean = Cycles.of_us mean_us in
      if d_min_us > 0 then
        Gen.exponential_clamped ~seed ~mean ~d_min:(Cycles.of_us d_min_us)
          ~count
      else Gen.exponential ~seed ~mean ~count

(* --trace-out picks its exporter from the extension. *)
let trace_out_format path =
  if Filename.check_suffix path ".jsonl" then Ok `Jsonl
  else if Filename.check_suffix path ".json" then Ok `Chrome
  else if Filename.check_suffix path ".rts" then Ok `Store
  else
    Error
      (Printf.sprintf
         "--trace-out %S: expected a .json, .jsonl or .rts extension" path)

(* --metrics-out likewise: .json (registry JSON) or .prom (Prometheus
   exposition text). *)
let metrics_out_format path =
  if Filename.check_suffix path ".json" then Ok `Json
  else if Filename.check_suffix path ".prom" then Ok `Prom
  else
    Error
      (Printf.sprintf "--metrics-out %S: expected a .json or .prom extension"
         path)

(* --profile likewise: .json (rthv-profile/1 document) or .txt (hot-phase
   table plus allocation waterfall). *)
let profile_out_format path =
  if Filename.check_suffix path ".json" then Ok `Json
  else if Filename.check_suffix path ".txt" then Ok `Txt
  else
    Error
      (Printf.sprintf "--profile %S: expected a .json or .txt extension" path)

let write_profile ~mode ~path prof =
  match profile_out_format path with
  | Error msg ->
      Format.eprintf "%s@." msg;
      1
  | Ok fmt ->
      let rendered =
        match fmt with
        | `Json ->
            (* Stamp the engine mode into the rthv-profile/1 document so a
               saved profile says which stepping engine produced it
               (Prof.of_json ignores unknown keys). *)
            let doc =
              match Rthv_obs.Prof.to_json prof with
              | Rthv_obs.Json.Obj fields ->
                  Rthv_obs.Json.Obj
                    (fields
                    @ [
                        ( "mode",
                          Rthv_obs.Json.String (Fast_forward.to_string mode) );
                      ])
              | other -> other
            in
            Rthv_obs.Json.to_string doc ^ "\n"
        | `Txt -> Format.asprintf "%a" Rthv_obs.Prof.pp_table prof
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc rendered);
      Format.printf "wrote phase profile to %s@." path;
      0

let write_metrics ~path registry =
  match metrics_out_format path with
  | Error msg ->
      Format.eprintf "%s@." msg;
      1
  | Ok fmt ->
      let rendered =
        match fmt with
        | `Json ->
            Rthv_obs.Json.to_string (Rthv_obs.Registry.to_json registry) ^ "\n"
        | `Prom -> Rthv_obs.Registry.to_prometheus registry
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc rendered);
      Format.printf "wrote %d metric series to %s@."
        (Rthv_obs.Registry.cardinality registry)
        path;
      0

let run_custom ~mode slots subscriber c_th_us c_bh_us mean_us d_min_us count
    seed monitor budget weighted_cycle_us strict_tdma show_histogram csv_out
    vcd_out trace_out metrics_out profile_out slo trace =
  let partitions =
    List.mapi
      (fun i slot_us ->
        Config.partition ~name:(Printf.sprintf "P%d" i) ~slot_us ())
      slots
  in
  let effective_d_min_us = if d_min_us > 0 then d_min_us else mean_us in
  let interarrivals =
    build_interarrivals ~trace ~seed ~mean_us ~d_min_us ~count
  in
  let shaping =
    match monitor with
    | Monitor_off -> Config.No_shaping
    | Monitor_dmin ->
        Config.Fixed_monitor (DF.d_min (Cycles.of_us effective_d_min_us))
    | Monitor_learn ->
        let activations =
          if Array.length interarrivals > 0 then Array.length interarrivals
          else count
        in
        Config.Self_learning
          { l = 5; learn_events = activations / 10; bound = None }
    | Monitor_budget -> Config.Budgeted { per_cycle = budget }
    | Monitor_combo ->
        (* d_min condition plus a capacity-[budget] burst cap refilled at the
           monitoring distance. *)
        Config.Monitor_and_bucket
          {
            fn = DF.d_min (Cycles.of_us effective_d_min_us);
            capacity = budget;
            refill = Cycles.of_us effective_d_min_us;
          }
  in
  let source =
    Config.source ~name:"irq0" ~line:0 ~subscriber ~c_th_us ~c_bh_us
      ~interarrivals ~shaping ()
  in
  let boundary =
    if strict_tdma then Rthv_core.Boundary_policy.Strict_cut
    else Rthv_core.Boundary_policy.Finish_bottom_handler
  in
  (* --weighted-cycle-us reinterprets --slots as integer weights over a
     fixed TDMA cycle apportioned by Slot_plan. *)
  let plan =
    match weighted_cycle_us with
    | None -> Config.Partition_slots
    | Some cycle_us ->
        Config.Weighted_plan
          { cycle = Cycles.of_us cycle_us; weights = Array.of_list slots }
  in
  let config =
    Config.make ~boundary ~plan ~partitions ~sources:[ source ] ()
  in
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> failwith msg);
  (* Attach a trace whenever any timeline export was requested. *)
  let trace =
    match (vcd_out, trace_out) with
    | None, None -> None
    | _ -> Some (Rthv_core.Hyp_trace.create ())
  in
  (* A .rts trace-out streams through the ring's spill hook into the
     batched columnar writer while the run is going, so the store is
     complete even when the bounded ring wraps — the million-event path. *)
  let store_writer =
    match (trace_out, trace) with
    | Some path, Some tr when Filename.check_suffix path ".rts" ->
        let w = Rthv_core.Trace_store.Writer.create path in
        Rthv_core.Hyp_trace.set_spill tr (fun ~time event ->
            Rthv_core.Trace_store.Writer.add w ~time event);
        Some w
    | _ -> None
  in
  let sim = Hyp_sim.create ?trace ~mode config in
  let registry = Rthv_obs.Registry.create () in
  let profiler = Option.map (fun _ -> Rthv_obs.Prof.create ()) profile_out in
  let slo_t =
    if slo then Some (Rthv_check.Slo.create ~registry config) else None
  in
  let run_sim () =
    let sinks =
      (if metrics_out <> None then
         [ Rthv_obs.Recorder.sink (Rthv_obs.Recorder.create ~registry ()) ]
       else [])
      @ match slo_t with Some t -> [ Rthv_check.Slo.sink t ] | None -> []
    in
    match sinks with
    | [] -> Hyp_sim.run sim
    | s :: rest ->
        Rthv_obs.Sink.with_sink
          (List.fold_left Rthv_obs.Sink.tee s rest)
          (fun () -> Hyp_sim.run sim)
  in
  (match profiler with
  | Some p -> Rthv_obs.Prof.with_profiler p run_sim
  | None -> run_sim ());
  let records = Hyp_sim.records sim in
  let stats = Hyp_sim.stats sim in
  let latencies = List.map Irq_record.latency_us records in
  let s = Summary.of_list latencies in
  Format.printf "IRQs completed: %d over %a simulated@."
    stats.Hyp_sim.completed_irqs Cycles.pp stats.Hyp_sim.sim_time;
  Format.printf "classes: %d direct, %d interposed, %d delayed@."
    stats.Hyp_sim.direct stats.Hyp_sim.interposed stats.Hyp_sim.delayed;
  Format.printf
    "latency: avg %.1fus, p50 %.1fus, p95 %.1fus, p99 %.1fus, worst %.1fus@."
    s.Summary.mean s.Summary.p50 s.Summary.p95 s.Summary.p99 s.Summary.max;
  Format.printf
    "context switches: %d slot, %d interposition (%d interpositions, %d \
     crossed a boundary, %d deferred switches)@."
    stats.Hyp_sim.slot_switches stats.Hyp_sim.interposition_switches
    stats.Hyp_sim.interpositions_started stats.Hyp_sim.boundary_crossings
    stats.Hyp_sim.bh_boundary_deferrals;
  Array.iteri
    (fun i stolen ->
      if stolen > 0 then
        Format.printf
          "partition %d: %a stolen by interposition (max %a per slot)@." i
          Cycles.pp stolen Cycles.pp stats.Hyp_sim.stolen_slot_max.(i))
    stats.Hyp_sim.stolen_total;
  if show_histogram then begin
    let h = Histogram.create ~bin_width_us:250. ~max_us:9000. in
    List.iter (Histogram.add h) latencies;
    Histogram.render ~log_scale:true Format.std_formatter h
  end;
  (match csv_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "irq,source,arrival_us,latency_us,classification\n";
      List.iter
        (fun r ->
          Printf.fprintf oc "%d,%s,%.3f,%.3f,%s\n" r.Irq_record.irq
            r.Irq_record.source
            (Cycles.to_us r.Irq_record.arrival)
            (Irq_record.latency_us r)
            (Irq_record.classification_name r.Irq_record.classification))
        records;
      close_out oc;
      Format.printf "wrote %d records to %s@." (List.length records) path);
  (match (vcd_out, trace) with
  | Some path, Some trace ->
      Rthv_core.Vcd_export.save ~path trace;
      Format.printf "wrote %d trace events to %s@."
        (Rthv_core.Hyp_trace.length trace)
        path
  | _ -> ());
  let trace_status =
    match (trace_out, trace) with
    | Some path, Some trace -> (
        match trace_out_format path with
        | Ok `Store ->
            let w = Option.get store_writer in
            Rthv_core.Trace_store.Writer.close w;
            Format.printf "wrote %d trace events to %s (store)@."
              (Rthv_core.Trace_store.Writer.events_written w)
              path;
            0
        | Ok `Jsonl ->
            Rthv_core.Trace_export.save_jsonl ~path trace;
            Format.printf "wrote %d trace events to %s (jsonl)@."
              (Rthv_core.Hyp_trace.length trace)
              path;
            0
        | Ok `Chrome ->
            let partition_names =
              Array.of_list (List.map (fun (p : Config.partition) -> p.Config.pname) partitions)
            in
            Rthv_core.Trace_export.save_chrome
              ~metadata:
                [
                  ( "mode",
                    Rthv_obs.Json.String (Fast_forward.to_string mode) );
                ]
              ~partition_names ~path trace;
            Format.printf "wrote %d trace events to %s (chrome)@."
              (Rthv_core.Hyp_trace.length trace)
              path;
            0
        | Error msg ->
            Format.eprintf "%s@." msg;
            1)
    | _ -> 0
  in
  let metrics_status =
    match metrics_out with
    | None -> 0
    | Some path -> write_metrics ~path registry
  in
  let profile_status =
    match (profile_out, profiler) with
    | Some path, Some p -> write_profile ~mode ~path p
    | _ -> 0
  in
  let slo_status =
    match slo_t with
    | None -> 0
    | Some t ->
        Format.printf "%a@." Rthv_check.Slo.pp t;
        if Rthv_check.Slo.ok t then 0
        else begin
          Format.eprintf
            "rthv_sim: observed latency exceeds an analytic bound@.";
          1
        end
  in
  Stdlib.max
    (Stdlib.max (Stdlib.max trace_status metrics_status) profile_status)
    slo_status

let run_experiment ~mode metrics_out profile_out name =
  let module Fig6 = Rthv_experiments.Fig6 in
  let ppf = Format.std_formatter in
  (* The sweep drivers fold per-task registries (and absorb per-task phase
     profiles) deterministically, so the exported metrics and profile are
     byte-identical for any --jobs value. *)
  let registry = Rthv_obs.Registry.create () in
  let metrics = Option.map (fun _ -> registry) metrics_out in
  let profiler = Option.map (fun _ -> Rthv_obs.Prof.create ()) profile_out in
  (* Analysis runs in-process (no sweep), so its busy-window/abstract-
     interpretation phases are captured by installing the profiler here. *)
  let with_prof f =
    match profiler with
    | Some p -> Rthv_obs.Prof.with_profiler p f
    | None -> f ()
  in
  let status =
    match name with
    | "fig6a" -> Fig6.print ppf (Fig6.run ?metrics ?profiler Fig6.Unmonitored); 0
    | "fig6b" -> Fig6.print ppf (Fig6.run ?metrics ?profiler Fig6.Monitored); 0
    | "fig6c" ->
        Fig6.print ppf (Fig6.run ?metrics ?profiler Fig6.Monitored_conforming);
        0
    | "fig7" ->
        let results = Rthv_experiments.Fig7.run_all ?metrics ?profiler () in
        List.iter (Rthv_experiments.Fig7.print ppf) results;
        0
    | "overhead" ->
        Rthv_experiments.Overhead.print ppf
          (Rthv_experiments.Overhead.run ?metrics ?profiler ());
        0
    | "analysis" ->
        Rthv_experiments.Analysis_tables.print ppf
          (with_prof Rthv_experiments.Analysis_tables.compute_all);
        0
    | other ->
        Format.eprintf
          "unknown experiment %S (fig6a fig6b fig6c fig7 overhead analysis)@."
          other;
        1
  in
  if status <> 0 then status
  else
    let metrics_status =
      match metrics_out with
      | None -> 0
      | Some path -> write_metrics ~path registry
    in
    let profile_status =
      match (profile_out, profiler) with
      | Some path, Some p -> write_profile ~mode ~path p
      | _ -> 0
    in
    Stdlib.max metrics_status profile_status

let main jobs mode experiment slots subscriber c_th_us c_bh_us mean_us
    d_min_us count seed monitor budget weighted_cycle_us strict_tdma histogram
    csv_out vcd_out trace_out metrics_out profile_out slo flight_dir trace =
  Option.iter Rthv_par.Par.set_default_jobs jobs;
  (* Canned experiments build their simulators internally, where the engine
     defaults from RTHV_SIM_MODE — export the flag so every path (custom
     run, experiment sweep, analysis) sees the same mode. *)
  Unix.putenv Fast_forward.env_var (Fast_forward.to_string mode);
  Option.iter
    (fun dir -> Rthv_core.Flight_recorder.enable ~dir ())
    flight_dir;
  match experiment with
  | Some name ->
      if slo then begin
        Format.eprintf "--slo applies to custom simulations, not canned \
                        experiments@.";
        1
      end
      else run_experiment ~mode metrics_out profile_out name
  | None ->
      if subscriber < 0 || subscriber >= List.length slots then begin
        Format.eprintf "subscriber %d out of range for %d partitions@."
          subscriber (List.length slots);
        1
      end
      else if budget < 1 then begin
        Format.eprintf "--budget must be >= 1@.";
        1
      end
      else
        run_custom ~mode slots subscriber c_th_us c_bh_us mean_us d_min_us
          count seed monitor budget weighted_cycle_us strict_tdma histogram
          csv_out vcd_out trace_out metrics_out profile_out slo trace

open Cmdliner

let experiment =
  Arg.(
    value
    & opt (some string) None
    & info [ "experiment"; "e" ] ~docv:"NAME"
        ~doc:
          "Run a canned paper experiment (fig6a, fig6b, fig6c, fig7, \
           overhead, analysis) instead of a custom simulation.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for experiment sweeps (default: $(b,RTHV_JOBS) \
           or the machine's recommended domain count; 1 forces the \
           sequential path).  Results are byte-identical for any value.  \
           Custom single-scenario simulations always run on one domain.")

let mode =
  Arg.(
    value
    & opt mode_conv (Fast_forward.default ())
    & info [ "mode" ] ~docv:"step|ff"
        ~doc:
          "Stepping engine: $(b,ff) (fast-forward, event-compressed — jumps \
           idle and intra-segment spans, the default) or $(b,step) (the \
           reference cycle-stepped loop).  Both produce byte-identical \
           observables; $(b,step) exists as the oracle.  The default \
           honours $(b,RTHV_SIM_MODE); the flag overrides it and is \
           exported to canned experiments.")

let slots =
  Arg.(
    value
    & opt (list int) [ 6000; 6000; 2000 ]
    & info [ "slots" ] ~docv:"US,US,..."
        ~doc:"TDMA slot lengths in microseconds, in cycle order.")

let subscriber =
  Arg.(
    value & opt int 1
    & info [ "subscriber" ] ~docv:"IDX"
        ~doc:"Partition index subscribing the IRQ source.")

let c_th_us =
  Arg.(
    value & opt int 5
    & info [ "cth-us" ] ~docv:"US" ~doc:"Top handler WCET in microseconds.")

let c_bh_us =
  Arg.(
    value & opt int 50
    & info [ "cbh-us" ] ~docv:"US" ~doc:"Bottom handler WCET in microseconds.")

let mean_us =
  Arg.(
    value & opt int 1544
    & info [ "mean-us" ] ~docv:"US"
        ~doc:"Mean exponential interarrival time in microseconds.")

let d_min_us =
  Arg.(
    value & opt int 0
    & info [ "dmin-us" ] ~docv:"US"
        ~doc:
          "Clamp interarrivals to at least this distance (0: no clamping). \
           Also the monitor's d_min; when 0, the monitor uses the mean.")

let count =
  Arg.(
    value & opt int 5000
    & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of IRQs to generate.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let monitor =
  Arg.(
    value
    & opt monitor_kind_conv Monitor_off
    & info [ "monitor"; "m" ] ~docv:"off|dmin|learn|budget|combo"
        ~doc:
          "Interrupt shaping mode: $(b,off) (Figure 4a), $(b,dmin) \
           (delta^- monitor), $(b,learn) (self-learning monitor), \
           $(b,budget) (at most $(b,--budget) interpositions per aligned \
           TDMA cycle window), $(b,combo) (d_min monitor AND a \
           capacity-$(b,--budget) token bucket).")

let budget =
  Arg.(
    value & opt int 1
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "Admissions per TDMA cycle for $(b,--monitor budget), or the \
           bucket capacity for $(b,--monitor combo).")

let weighted_cycle_us =
  Arg.(
    value
    & opt (some int) None
    & info [ "weighted-cycle-us" ] ~docv:"US"
        ~doc:
          "Use a weighted slot plan: keep the TDMA cycle at this length and \
           reinterpret $(b,--slots) as integer weights apportioned over it \
           (largest-remainder method).")

let strict_tdma =
  Arg.(
    value & flag
    & info [ "strict-tdma" ]
        ~doc:
          "Cut bottom handlers at slot boundaries instead of letting them \
           finish with a bounded overrun.")

let histogram =
  Arg.(
    value & flag
    & info [ "histogram" ] ~doc:"Print an ASCII latency histogram.")

let csv_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Write per-IRQ records as CSV.")

let vcd_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"PATH"
        ~doc:
          "Write the hypervisor scheduling timeline as a VCD waveform \
           (viewable in GTKWave).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the hypervisor timeline as a structured trace; the \
           extension picks the format ($(b,.json): Chrome Trace Event JSON \
           for Perfetto, $(b,.jsonl): one event per line).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Record simulator metrics (counters, gauges, latency summaries) \
           and write them on exit; the extension picks the format \
           ($(b,.json): registry JSON, $(b,.prom): Prometheus exposition \
           text).  Works for custom simulations and canned experiments; \
           sweep metrics are byte-identical for any $(b,--jobs) value.")

let profile_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Profile simulator phases (event dispatch, admission, boundary \
           crossing, sink emit) and fixed-point iterations, writing the \
           hierarchical hot-phase profile on exit; the extension picks the \
           format ($(b,.json): rthv-profile/1 document, $(b,.txt): \
           hot-phase table plus allocation waterfall).  Sweep profiles are \
           merged deterministically and are byte-identical for any \
           $(b,--jobs) value.")

let slo =
  Arg.(
    value & flag
    & info [ "slo" ]
        ~doc:
          "Stream every IRQ latency sample through the SLO gauges while \
           the simulation runs (observed-vs-bound burn per source x \
           class), print the verdict table on exit and exit non-zero if \
           any sample exceeded its analytic bound.  With \
           $(b,--metrics-out) the burn gauges land in the exported \
           registry.")

let flight_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Enable the crash flight recorder: keep a bounded ring of recent \
           scheduling events per simulation and dump it as JSONL under \
           $(docv) on oracle violations or uncaught exceptions \
           (equivalent to setting $(b,RTHV_FLIGHT_DIR)).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"NAME"
        ~doc:
          "Drive the IRQ source from a named activation trace instead of \
           exponential arrivals (available: ecu).")

let cmd =
  let doc =
    "simulate a TDMA real-time hypervisor with monitored interposed \
     interrupt handling (Beckert et al., DAC 2014)"
  in
  Cmd.v
    (Cmd.info "rthv_sim" ~doc)
    Term.(
      const main $ jobs $ mode $ experiment $ slots $ subscriber $ c_th_us
      $ c_bh_us
      $ mean_us $ d_min_us $ count $ seed $ monitor $ budget
      $ weighted_cycle_us $ strict_tdma $ histogram $ csv_out $ vcd_out
      $ trace_out $ metrics_out $ profile_out $ slo $ flight_dir $ trace_arg)

let () = exit (Cmd.eval' cmd)
