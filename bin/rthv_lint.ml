(* rthv_lint: static configuration analyzer, trace-invariant oracle and
   counterexample-guided certifier for the real-time hypervisor
   reproduction.

   Pass 1 checks a configuration against the paper's analysis before a
   single cycle is simulated (rule codes RTHV0xx); pass 2 (--trace-audit)
   simulates the scenario and replays the recorded hypervisor trace through
   the invariant oracle (codes RTHV1xx); pass 3 (--certify) synthesizes an
   adversarial witness trace for every Error-severity refutation, demotes
   any Error the replay cannot confirm, and emits a proof-carrying
   certificate artifact that --recheck re-validates without re-running the
   analysis.

   Examples:
     rthv_lint                            # lint the three example scenarios
     rthv_lint -s demo_bad                # watch the static rules fire
     rthv_lint --trace-audit              # lint + simulate + audit the traces
     rthv_lint --certify --out-dir certs  # witness-backed certificates
     rthv_lint --recheck certs/demo_bad.cert.json
     rthv_lint --gen-batch 100 --out-dir fleet    # deterministic CI corpus
     rthv_lint --batch fleet --jobs 4     # fleet lint on the domain pool
     rthv_lint --batch fleet --certify --out-dir fleet-certs --jobs 4
     rthv_lint --format=sarif             # SARIF 2.1.0, for code scanning
     rthv_lint --list-rules               # every rule and invariant code *)

module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Par = Rthv_par.Par
module Check = Rthv_check

type finding = { scenario : string; pass : string; diag : Check.Diagnostic.t }

let lint_scenario ~certify name config =
  let diags =
    if certify then fst (Check.Witness.certified config)
    else Check.Lint.analyze config
  in
  List.map (fun diag -> { scenario = name; pass = "lint"; diag }) diags

let trace_audit_scenario name config =
  match Config.validate config with
  | Error _ -> [] (* already an RTHV001 in the lint pass *)
  | Ok () ->
      let trace =
        Hyp_trace.create ~capacity:Hyp_sim.audit_trace_capacity ()
      in
      let sim = Hyp_sim.create ~trace config in
      Hyp_sim.run sim;
      let spec = Check.Trace_oracle.of_config config in
      List.map
        (fun diag -> { scenario = name; pass = "trace"; diag })
        (Check.Trace_oracle.audit spec trace)

let print_text ~selected ~passes findings =
  List.iter
    (fun scenario ->
      List.iter
        (fun pass ->
          let diags =
            List.filter_map
              (fun f ->
                if f.scenario = scenario && f.pass = pass then Some f.diag
                else None)
              findings
          in
          Format.printf "== %s (%s) ==@." scenario
            (if pass = "lint" then "static analysis" else "trace audit");
          Format.printf "%a@." Check.Diagnostic.pp_report diags)
        passes)
    selected

let print_json findings =
  let objects =
    List.map
      (fun f ->
        Check.Diagnostic.to_json
          ~extra:[ ("scenario", f.scenario); ("pass", f.pass) ]
          f.diag)
      findings
  in
  print_string ("[" ^ String.concat "," objects ^ "]\n")

let print_sarif groups = print_string (Check.Sarif.to_string groups)

let list_rules () =
  Format.printf "Static rules (pass 1):@.";
  List.iter
    (fun (code, doc) -> Format.printf "  %s  %s@." code doc)
    Check.Lint.rules;
  Format.printf "Trace invariants (pass 2, --trace-audit):@.";
  List.iter
    (fun (code, doc) -> Format.printf "  %s  %s@." code doc)
    Check.Trace_oracle.invariants;
  0

(* --- certificate artifacts ----------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_certificates ~out_dir certs =
  ensure_dir out_dir;
  List.fold_left
    (fun failed (name, cert) ->
      match cert with
      | Error e ->
          Format.eprintf "%s: certificate build failed: %s@." name e;
          failed + 1
      | Ok s ->
          write_file (Filename.concat out_dir (name ^ ".cert.json")) s;
          failed)
    0 certs

let recheck_files files =
  let failed =
    List.fold_left
      (fun failed path ->
        match
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Check.Certify.recheck_string s
        with
        | Ok () ->
            Format.printf "%s: certificate ok@." path;
            failed
        | Error msgs ->
            Format.printf "%s: REJECTED@." path;
            List.iter (fun m -> Format.printf "  %s@." m) msgs;
            failed + 1
        | exception Sys_error e ->
            Format.printf "%s: REJECTED@.  %s@." path e;
            failed + 1)
      0 files
  in
  if failed = 0 then 0 else 1

(* --- fleet mode ----------------------------------------------------------- *)

let gen_batch_mode ~count ~seed ~out_dir =
  match out_dir with
  | None ->
      Format.eprintf "--gen-batch requires --out-dir@.";
      1
  | Some dir -> (
      match Check.Fleet.write_batch ~dir (Check.Fleet.gen_batch ~seed ~count) with
      | Ok n ->
          Format.printf "wrote %d config(s) to %s@." n dir;
          0
      | Error e ->
          Format.eprintf "%s@." e;
          1)

let batch_mode ~dir ~pool ~certify ~out_dir ~format =
  match Check.Fleet.load_dir dir with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok configs ->
      if certify then (
        match out_dir with
        | None ->
            Format.eprintf "--batch --certify requires --out-dir@.";
            1
        | Some out_dir ->
            let certs = Check.Fleet.certify_batch ~pool configs in
            let failed = write_certificates ~out_dir certs in
            Format.printf "certified %d config(s) into %s (%d failed)@."
              (List.length certs) out_dir failed;
            if failed = 0 then 0 else 1)
      else
        let results = Check.Fleet.lint_batch ~pool configs in
        (match format with
        | `Text -> print_string (Check.Fleet.report results)
        | `Json ->
            print_string
              ("["
              ^ String.concat ","
                  (List.concat_map
                     (fun (name, diags) ->
                       List.map
                         (Check.Diagnostic.to_json
                            ~extra:[ ("scenario", name); ("pass", "lint") ])
                         diags)
                     results)
              ^ "]\n")
        | `Sarif ->
            print_sarif
              (List.map (fun (name, diags) -> (Some name, diags)) results));
        if
          List.exists
            (fun (_, diags) -> List.exists Check.Diagnostic.is_error diags)
            results
        then 2
        else 0

(* --- entry point ----------------------------------------------------------- *)

let main scenarios all format trace_audit rules_only certify out_dir recheck
    batch gen_batch seed jobs =
  let pool =
    match jobs with Some j -> Par.create ~jobs:j () | None -> Par.create ()
  in
  if rules_only then list_rules ()
  else if recheck <> [] then recheck_files recheck
  else
    match (gen_batch, batch) with
    | Some count, _ -> gen_batch_mode ~count ~seed ~out_dir
    | None, Some dir -> batch_mode ~dir ~pool ~certify ~out_dir ~format
    | None, None -> (
        let selected =
          if all then List.map fst Check.Scenarios.all
          else if scenarios = [] then List.map fst Check.Scenarios.good
          else scenarios
        in
        let unknown =
          List.filter (fun s -> Check.Scenarios.find s = None) selected
        in
        if unknown <> [] then begin
          Format.eprintf "unknown scenario(s): %s (available: %s)@."
            (String.concat ", " unknown)
            (String.concat ", " (List.map fst Check.Scenarios.all));
          1
        end
        else
          let pairs =
            List.map
              (fun name ->
                (name, (Option.get (Check.Scenarios.find name)) ()))
              selected
          in
          let findings =
            List.concat
              (Par.map ~pool
                 (fun (name, config) ->
                   lint_scenario ~certify name config
                   @
                   if trace_audit then trace_audit_scenario name config
                   else [])
                 pairs)
          in
          let artifact_failures =
            match (certify, out_dir) with
            | true, Some out_dir ->
                write_certificates ~out_dir
                  (Par.map ~pool
                     (fun (name, config) ->
                       (name, Check.Certify.build_string ~scenario:name config))
                     pairs)
            | _ -> 0
          in
          (match format with
          | `Text ->
              let passes =
                "lint" :: (if trace_audit then [ "trace" ] else [])
              in
              print_text ~selected ~passes findings
          | `Json -> print_json findings
          | `Sarif ->
              print_sarif
                (List.map
                   (fun name ->
                     ( Some name,
                       List.filter_map
                         (fun f ->
                           if f.scenario = name then Some f.diag else None)
                         findings ))
                   selected));
          if artifact_failures > 0 then 1
          else if
            List.exists (fun f -> Check.Diagnostic.is_error f.diag) findings
          then 2
          else 0)

open Cmdliner

let scenarios =
  Arg.(
    value & opt_all string []
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario to analyse (repeatable).  Defaults to the three example \
           scenarios; see --all for the rule-demonstration input.")

let all =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Analyse every scenario, including the deliberately broken \
              $(b,demo_bad).")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,text), $(b,json) or $(b,sarif) (2.1.0).")

let trace_audit =
  Arg.(
    value & flag
    & info [ "trace-audit" ]
        ~doc:
          "Additionally simulate each scenario and replay the recorded \
           hypervisor trace through the invariant oracle (codes RTHV1xx).")

let rules_only =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"List every rule and invariant code, then exit.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Counterexample-guided certification: synthesize an adversarial \
           witness for every Error-severity refutation, demote Errors whose \
           replay does not confirm, and (with --out-dir) write \
           proof-carrying $(b,.cert.json) artifacts that --recheck \
           re-validates offline.")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-dir" ] ~docv:"DIR"
        ~doc:"Directory for --certify artifacts or --gen-batch configs.")

let recheck =
  Arg.(
    value & opt_all string []
    & info [ "recheck" ] ~docv:"FILE"
        ~doc:
          "Re-validate a certificate artifact (repeatable): schema, digest, \
           config round-trip, interval consistency and witness digests are \
           checked without re-running analysis or simulation.")

let batch =
  Arg.(
    value
    & opt (some string) None
    & info [ "batch" ] ~docv:"DIR"
        ~doc:
          "Lint (or, with --certify, certify) every config JSON in DIR on \
           the domain pool.  Output is byte-identical at any --jobs count.")

let gen_batch =
  Arg.(
    value
    & opt (some int) None
    & info [ "gen-batch" ] ~docv:"N"
        ~doc:
          "Write N deterministically generated configs (from --seed) to \
           --out-dir, then exit.")

let seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Fleet-generation seed for --gen-batch.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for batch/certify runs (default: $(b,RTHV_JOBS) \
           or the host core count).")

let cmd =
  let doc =
    "statically analyse hypervisor configurations, audit simulation traces \
     and certify refutations with replayable counterexamples"
  in
  Cmd.v
    (Cmd.info "rthv_lint" ~doc
       ~exits:
         (Cmd.Exit.info 2 ~doc:"error-severity findings were reported"
         :: Cmd.Exit.defaults))
    Term.(
      const main $ scenarios $ all $ format $ trace_audit $ rules_only
      $ certify $ out_dir $ recheck $ batch $ gen_batch $ seed $ jobs)

let () = exit (Cmd.eval' cmd)
