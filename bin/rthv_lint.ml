(* rthv_lint: static configuration analyzer and trace-invariant oracle for
   the real-time hypervisor reproduction.

   Pass 1 checks a configuration against the paper's analysis before a
   single cycle is simulated (rule codes RTHV0xx); pass 2 (--trace-audit)
   simulates the scenario and replays the recorded hypervisor trace through
   the invariant oracle (codes RTHV1xx).

   Examples:
     rthv_lint                          # lint the three example scenarios
     rthv_lint -s demo_bad              # watch the static rules fire
     rthv_lint --trace-audit            # lint + simulate + audit the traces
     rthv_lint --format=json            # one JSON array, for CI
     rthv_lint --list-rules             # every rule and invariant code *)

module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Check = Rthv_check

type finding = { scenario : string; pass : string; diag : Check.Diagnostic.t }

let lint_scenario name config =
  List.map
    (fun diag -> { scenario = name; pass = "lint"; diag })
    (Check.Lint.analyze config)

let trace_audit_scenario name config =
  match Config.validate config with
  | Error _ -> [] (* already an RTHV001 in the lint pass *)
  | Ok () ->
      let trace =
        Hyp_trace.create ~capacity:Hyp_sim.audit_trace_capacity ()
      in
      let sim = Hyp_sim.create ~trace config in
      Hyp_sim.run sim;
      let spec = Check.Trace_oracle.of_config config in
      List.map
        (fun diag -> { scenario = name; pass = "trace"; diag })
        (Check.Trace_oracle.audit spec trace)

let print_text ~selected ~passes findings =
  List.iter
    (fun scenario ->
      List.iter
        (fun pass ->
          let diags =
            List.filter_map
              (fun f ->
                if f.scenario = scenario && f.pass = pass then Some f.diag
                else None)
              findings
          in
          Format.printf "== %s (%s) ==@." scenario
            (if pass = "lint" then "static analysis" else "trace audit");
          Format.printf "%a@." Check.Diagnostic.pp_report diags)
        passes)
    selected

let print_json findings =
  let objects =
    List.map
      (fun f ->
        Check.Diagnostic.to_json
          ~extra:[ ("scenario", f.scenario); ("pass", f.pass) ]
          f.diag)
      findings
  in
  print_string ("[" ^ String.concat "," objects ^ "]\n")

let list_rules () =
  Format.printf "Static rules (pass 1):@.";
  List.iter
    (fun (code, doc) -> Format.printf "  %s  %s@." code doc)
    Check.Lint.rules;
  Format.printf "Trace invariants (pass 2, --trace-audit):@.";
  List.iter
    (fun (code, doc) -> Format.printf "  %s  %s@." code doc)
    Check.Trace_oracle.invariants;
  0

let main scenarios all format trace_audit rules_only =
  if rules_only then list_rules ()
  else
    let selected =
      if all then List.map fst Check.Scenarios.all
      else if scenarios = [] then List.map fst Check.Scenarios.good
      else scenarios
    in
    let unknown =
      List.filter (fun s -> Check.Scenarios.find s = None) selected
    in
    if unknown <> [] then begin
      Format.eprintf "unknown scenario(s): %s (available: %s)@."
        (String.concat ", " unknown)
        (String.concat ", " (List.map fst Check.Scenarios.all));
      1
    end
    else begin
      let findings =
        List.concat_map
          (fun name ->
            let config =
              (Option.get (Check.Scenarios.find name)) ()
            in
            lint_scenario name config
            @ (if trace_audit then trace_audit_scenario name config else []))
          selected
      in
      (match format with
      | `Text ->
          let passes = "lint" :: (if trace_audit then [ "trace" ] else []) in
          print_text ~selected ~passes findings
      | `Json -> print_json findings);
      if List.exists (fun f -> Check.Diagnostic.is_error f.diag) findings then 2
      else 0
    end

open Cmdliner

let scenarios =
  Arg.(
    value & opt_all string []
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario to analyse (repeatable).  Defaults to the three example \
           scenarios; see --all for the rule-demonstration input.")

let all =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Analyse every scenario, including the deliberately broken \
              $(b,demo_bad).")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")

let trace_audit =
  Arg.(
    value & flag
    & info [ "trace-audit" ]
        ~doc:
          "Additionally simulate each scenario and replay the recorded \
           hypervisor trace through the invariant oracle (codes RTHV1xx).")

let rules_only =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"List every rule and invariant code, then exit.")

let cmd =
  let doc =
    "statically analyse hypervisor configurations and audit simulation \
     traces for temporal-independence violations"
  in
  Cmd.v
    (Cmd.info "rthv_lint" ~doc
       ~exits:
         (Cmd.Exit.info 2 ~doc:"error-severity findings were reported"
         :: Cmd.Exit.defaults))
    Term.(
      const main $ scenarios $ all $ format $ trace_audit $ rules_only)

let () = exit (Cmd.eval' cmd)
