(* rthv_trace: record or re-export hypervisor timelines and print a
   metrics summary.

   Record a scenario and write a Perfetto-loadable Chrome trace:
     rthv_trace --scenario quickstart --format chrome -o trace.json

   Record to JSONL (one structured event per line), then re-export the
   file without re-simulating:
     rthv_trace -s quickstart --format jsonl -o run.jsonl
     rthv_trace --from-jsonl run.jsonl --format chrome -o trace.json

   Filter to one partition inside a time window:
     rthv_trace -s avionics_ima --partition 2 --from-us 0 --to-us 56000 \
                --format chrome -o p2.json

   The summary is a dump of the lib/obs metrics registry: every simulator
   instrumentation point (latency quantiles, monitor verdicts, stolen time)
   plus per-event-kind trace counts; --metrics selects the rendering. *)

module Cycles = Rthv_engine.Cycles
module Fast_forward = Rthv_engine.Fast_forward
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Trace_export = Rthv_core.Trace_export
module Trace_store = Rthv_core.Trace_store
module Trace_query = Rthv_core.Trace_query
module Vcd_export = Rthv_core.Vcd_export
module Obs = Rthv_obs
module Scenarios = Rthv_check.Scenarios
module Slo = Rthv_check.Slo

type source = Scenario of string | From_jsonl of string | From_store of string
type format = Chrome | Jsonl | Vcd | Store
type metrics = M_text | M_json | M_prometheus | M_none

(* --- recording ---------------------------------------------------------- *)

let line_subscribers config =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (s : Config.source) ->
      Hashtbl.replace table s.Config.line s.Config.subscriber)
    config.Config.sources;
  Some table

let record_scenario ~capacity ~registry ~mode name =
  match Scenarios.find name with
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (available: %s)" name
           (String.concat ", " (List.map fst Scenarios.all)))
  | Some build ->
      let config = build () in
      let trace = Hyp_trace.create ~capacity () in
      let recorder = Obs.Recorder.create ~registry () in
      let sim = Hyp_sim.create ~trace ~mode config in
      Obs.Sink.with_sink (Obs.Recorder.sink recorder) (fun () ->
          Hyp_sim.run sim);
      let names =
        Array.of_list
          (List.map
             (fun (p : Config.partition) -> p.Config.pname)
             config.Config.partitions)
      in
      Ok (Hyp_trace.to_list trace, Some names, line_subscribers config)

(* --- filtering ---------------------------------------------------------- *)

let event_partitions ~lines event =
  let of_line line =
    match lines with
    | Some table -> (
        match Hashtbl.find_opt table line with
        | Some p -> [ p ]
        | None -> [])
    | None -> []
  in
  match event with
  | Hyp_trace.Slot_switch { from_partition; to_partition } ->
      [ from_partition; to_partition ]
  | Hyp_trace.Boundary_deferred { owner; _ } -> [ owner ]
  | Hyp_trace.Interposition_start { target; _ }
  | Hyp_trace.Interposition_end { target; _ }
  | Hyp_trace.Interposition_crossed_boundary { target } ->
      [ target ]
  | Hyp_trace.Bottom_handler_start { partition; _ }
  | Hyp_trace.Bottom_handler_done { partition; _ } ->
      [ partition ]
  | Hyp_trace.Top_handler_run { line; _ }
  | Hyp_trace.Monitor_decision { line; _ }
  | Hyp_trace.Irq_raised { line; _ }
  | Hyp_trace.Irq_coalesced { line } ->
      of_line line

let apply_filters ~partition ~from_us ~to_us ~lines entries =
  let from_c = Option.map Cycles.of_us from_us in
  let to_c = Option.map Cycles.of_us to_us in
  List.filter
    (fun e ->
      let time_ok =
        (match from_c with Some f -> e.Hyp_trace.time >= f | None -> true)
        && match to_c with Some u -> e.Hyp_trace.time <= u | None -> true
      in
      let partition_ok =
        match partition with
        | None -> true
        | Some p -> (
            match event_partitions ~lines e.Hyp_trace.event with
            | [] ->
                (* Unattributable (no line map, e.g. re-exported JSONL):
                   keep rather than silently hide hypervisor activity. *)
                true
            | ps -> List.mem p ps)
      in
      time_ok && partition_ok)
    entries

(* --- summary ------------------------------------------------------------ *)

let count_trace_events registry entries =
  List.iter
    (fun e ->
      let kind =
        match e.Hyp_trace.event with
        | Hyp_trace.Slot_switch _ -> "slot_switch"
        | Hyp_trace.Boundary_deferred _ -> "boundary_deferred"
        | Hyp_trace.Irq_raised _ -> "irq_raised"
        | Hyp_trace.Bottom_handler_start _ -> "bottom_handler_start"
        | Hyp_trace.Top_handler_run _ -> "top_handler"
        | Hyp_trace.Monitor_decision _ -> "monitor_decision"
        | Hyp_trace.Interposition_start _ -> "interposition_start"
        | Hyp_trace.Interposition_end _ -> "interposition_end"
        | Hyp_trace.Interposition_crossed_boundary _ ->
            "interposition_crossed_boundary"
        | Hyp_trace.Bottom_handler_done _ -> "bottom_handler_done"
        | Hyp_trace.Irq_coalesced _ -> "irq_coalesced"
      in
      Obs.Registry.incr registry ~labels:(Obs.Labels.v [ ("ev", kind) ])
        "rthv_trace_events_total" 1)
    entries

let print_summary ppf metrics registry =
  match metrics with
  | M_none -> ()
  | M_text ->
      Format.fprintf ppf "-- metrics (%d series) --@.%a"
        (Obs.Registry.cardinality registry)
        Obs.Registry.pp registry
  | M_json ->
      Format.fprintf ppf "%s@."
        (Obs.Json.to_string (Obs.Registry.to_json registry))
  | M_prometheus ->
      Format.fprintf ppf "%s" (Obs.Registry.to_prometheus registry)

(* --- main --------------------------------------------------------------- *)

let write_output ~out render =
  match out with
  | "-" ->
      print_string (render ());
      flush stdout
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (render ()))

let main jobs mode flight_dir source format out to_store partition from_us
    to_us metrics capacity =
  Option.iter Rthv_par.Par.set_default_jobs jobs;
  Option.iter
    (fun dir -> Rthv_core.Flight_recorder.enable ~dir ())
    flight_dir;
  let registry = Obs.Registry.create () in
  (* Re-exports did not simulate, so only a fresh recording gets the engine
     mode stamped into the Chrome trace metadata. *)
  let metadata =
    match source with
    | Scenario _ ->
        [ ("mode", Obs.Json.String (Fast_forward.to_string mode)) ]
    | From_jsonl _ | From_store _ -> []
  in
  let recorded =
    match source with
    | Scenario name -> record_scenario ~capacity ~registry ~mode name
    | From_jsonl path -> (
        match Trace_export.load_jsonl ~path with
        | Ok entries -> Ok (entries, None, None)
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
    | From_store path -> (
        match Trace_store.read_entries path with
        | Ok entries -> Ok (entries, None, None)
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  match recorded with
  | Error msg ->
      Format.eprintf "rthv_trace: %s@." msg;
      1
  | Ok (entries, partition_names, lines) -> (
      let total = List.length entries in
      let entries = apply_filters ~partition ~from_us ~to_us ~lines entries in
      count_trace_events registry entries;
      let trace = Trace_export.trace_of_entries entries in
      let fail = ref None in
      (* --to-store always writes the binary store; the -o export then only
         runs when it targets a real file, so a bare --to-store does not
         spray an unwanted JSON document over stdout. *)
      Option.iter
        (fun path -> ignore (Trace_store.write_entries path entries : int))
        to_store;
      (if to_store = None || out <> "-" then
         match format with
         | Chrome ->
             write_output ~out (fun () ->
                 Trace_export.chrome_string ~metadata ?partition_names trace
                 ^ "\n")
         | Jsonl ->
             write_output ~out (fun () -> Trace_export.jsonl_string trace)
         | Vcd -> write_output ~out (fun () -> Vcd_export.to_string trace)
         | Store ->
             if out = "-" then
               fail :=
                 Some
                   "--format store is binary; pass -o FILE (or use \
                    --to-store FILE)"
             else ignore (Trace_store.write_entries out entries : int));
      match !fail with
      | Some msg ->
          Format.eprintf "rthv_trace: %s@." msg;
          1
      | None ->
          (* Keep the export stream clean: the summary shares stdout only
             when the export went to a file. *)
          let export_to_stdout = to_store = None && out = "-" in
          let ppf =
            if export_to_stdout then Format.err_formatter
            else Format.std_formatter
          in
          Option.iter
            (fun path ->
              Format.fprintf ppf
                "wrote %d event(s) to store %s (%d before filtering)@."
                (List.length entries) path total)
            to_store;
          if out <> "-" then
            Format.fprintf ppf
              "wrote %d event(s) to %s (%d before filtering)@."
              (List.length entries) out total;
          print_summary ppf metrics registry;
          Format.pp_print_flush ppf ();
          0)

open Cmdliner

let source =
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Simulate a named scenario (%s) with a trace attached."
               (String.concat ", " (List.map fst Scenarios.all))))
  in
  let from_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-jsonl" ] ~docv:"FILE"
          ~doc:
            "Re-export a previously recorded JSONL trace instead of \
             simulating.")
  in
  let from_store =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-store" ] ~docv:"FILE"
          ~doc:
            "Re-export a previously recorded binary trace store \
             (rthv-tracestore/1) instead of simulating.")
  in
  let combine scenario from_jsonl from_store =
    match (scenario, from_jsonl, from_store) with
    | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
        `Error
          ( true,
            "--scenario, --from-jsonl and --from-store are mutually \
             exclusive" )
    | None, Some path, None -> `Ok (From_jsonl path)
    | None, None, Some path -> `Ok (From_store path)
    | Some name, None, None -> `Ok (Scenario name)
    | None, None, None -> `Ok (Scenario "quickstart")
  in
  Term.(ret (const combine $ scenario $ from_jsonl $ from_store))

let format =
  Arg.(
    value
    & opt
        (enum
           [
             ("chrome", Chrome);
             ("jsonl", Jsonl);
             ("vcd", Vcd);
             ("store", Store);
           ])
        Chrome
    & info [ "format"; "f" ] ~docv:"FMT"
        ~doc:
          "Export format: $(b,chrome) (Trace Event JSON for \
           Perfetto/chrome://tracing), $(b,jsonl) (one event per line), \
           $(b,vcd) (GTKWave waveform) or $(b,store) (binary \
           rthv-tracestore/1 columnar store; requires $(b,-o FILE)).")

let to_store =
  Arg.(
    value
    & opt (some string) None
    & info [ "to-store" ] ~docv:"FILE"
        ~doc:
          "Additionally write the (filtered) events as a binary \
           rthv-tracestore/1 store — the input of $(b,rthv_trace query).  \
           When $(b,-o) is left at stdout the regular export is skipped.")

let out =
  Arg.(
    value & opt string "-"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Output file; $(b,-) writes the export to stdout (default).")

let partition =
  Arg.(
    value
    & opt (some int) None
    & info [ "partition"; "p" ] ~docv:"IDX"
        ~doc:
          "Keep only events attributable to this partition (slot \
           switches touching it, its interpositions, deferrals and \
           completions, and its sources' IRQ activity).")

let from_us =
  Arg.(
    value
    & opt (some int) None
    & info [ "from-us" ] ~docv:"US" ~doc:"Drop events before this time.")

let to_us =
  Arg.(
    value
    & opt (some int) None
    & info [ "to-us" ] ~docv:"US" ~doc:"Drop events after this time.")

let metrics =
  Arg.(
    value
    & opt
        (enum
           [
             ("text", M_text);
             ("json", M_json);
             ("prometheus", M_prometheus);
             ("none", M_none);
           ])
        M_text
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Metrics summary rendering: $(b,text), $(b,json), \
           $(b,prometheus) or $(b,none).  Printed to stderr when the \
           export goes to stdout.")

let capacity =
  Arg.(
    value
    & opt int Hyp_sim.audit_trace_capacity
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Trace ring-buffer capacity when simulating.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for any sharded sweeps (default: $(b,RTHV_JOBS) \
           or the machine's recommended domain count).  A single scenario \
           recording is one simulation and always runs on one domain; \
           $(b,profile --repeat) shards across domains.")

let mode_conv =
  let parse s =
    match Fast_forward.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  let print ppf m = Format.pp_print_string ppf (Fast_forward.to_string m) in
  Arg.conv (parse, print)

let mode =
  Arg.(
    value
    & opt mode_conv (Fast_forward.default ())
    & info [ "mode" ] ~docv:"step|ff"
        ~doc:
          "Stepping engine for a fresh recording: $(b,ff) (event-compressed \
           fast-forward, the default) or $(b,step) (the reference loop).  \
           Both record byte-identical timelines; the chosen mode is stamped \
           into the Chrome trace metadata.  Ignored with $(b,--from-jsonl) \
           / $(b,--from-store).  The default honours $(b,RTHV_SIM_MODE).")

let flight_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Enable the crash flight recorder: keep a bounded ring of recent \
           scheduling events per simulation and dump it as JSONL under \
           $(docv) on oracle violations, uncaught exceptions or \
           negative-headroom reports (equivalent to setting \
           $(b,RTHV_FLIGHT_DIR)).")

(* --- report: latency attribution against the analytic bounds ------------ *)

let opt_us = function
  | Some v -> Printf.sprintf "%10.1f" v
  | None -> "         -"

let print_report_text scenario rows verdict_for =
  Format.printf "-- latency attribution: scenario %s --@." scenario;
  Format.printf "%-16s %-12s %7s %10s %10s %10s %10s %10s@." "source" "class"
    "count" "p50us" "p99us" "maxus" "boundus" "headroom";
  List.iter
    (fun (r : Obs.Attribution.row) ->
      let v = verdict_for r.Obs.Attribution.r_source r.Obs.Attribution.r_class in
      let bound = Option.bind v (fun v -> v.Rthv_check.Headroom.hv_bound_us) in
      let headroom =
        Option.bind v (fun v -> v.Rthv_check.Headroom.hv_headroom_us)
      in
      let s = r.Obs.Attribution.r_latency in
      Format.printf "%-16s %-12s %7d %10.1f %10.1f %10.1f %s %s@."
        r.Obs.Attribution.r_source r.Obs.Attribution.r_class
        r.Obs.Attribution.r_count s.Obs.Attribution.st_p50
        s.Obs.Attribution.st_p99 s.Obs.Attribution.st_max (opt_us bound)
        (opt_us headroom))
    rows;
  Format.printf "@.per-component waterfall (mean us per IRQ):@.";
  List.iter
    (fun (r : Obs.Attribution.row) ->
      Format.printf "%s/%s:@." r.Obs.Attribution.r_source
        r.Obs.Attribution.r_class;
      let components = r.Obs.Attribution.r_components in
      let peak =
        List.fold_left
          (fun acc (_, (s : Obs.Attribution.stats)) ->
            Float.max acc s.Obs.Attribution.st_mean)
          0. components
      in
      List.iter
        (fun (name, (s : Obs.Attribution.stats)) ->
          let mean = s.Obs.Attribution.st_mean in
          let width =
            if peak <= 0. then 0
            else int_of_float (Float.round (40. *. mean /. peak))
          in
          Format.printf "  %-16s %10.2f |%s@." name mean (String.make width '#'))
        components)
    rows

let stats_json (s : Obs.Attribution.stats) =
  Obs.Json.Obj
    [
      ("p50_us", Obs.Json.Float s.Obs.Attribution.st_p50);
      ("p99_us", Obs.Json.Float s.Obs.Attribution.st_p99);
      ("max_us", Obs.Json.Float s.Obs.Attribution.st_max);
      ("mean_us", Obs.Json.Float s.Obs.Attribution.st_mean);
    ]

let print_report_json scenario rows verdict_for =
  let opt = function Some v -> Obs.Json.Float v | None -> Obs.Json.Null in
  let row_json (r : Obs.Attribution.row) =
    let v = verdict_for r.Obs.Attribution.r_source r.Obs.Attribution.r_class in
    Obs.Json.Obj
      [
        ("source", Obs.Json.String r.Obs.Attribution.r_source);
        ("class", Obs.Json.String r.Obs.Attribution.r_class);
        ("count", Obs.Json.Int r.Obs.Attribution.r_count);
        ("latency", stats_json r.Obs.Attribution.r_latency);
        ( "components",
          Obs.Json.Obj
            (List.map
               (fun (name, s) -> (name, stats_json s))
               r.Obs.Attribution.r_components) );
        ( "bound_us",
          opt (Option.bind v (fun v -> v.Rthv_check.Headroom.hv_bound_us)) );
        ( "headroom_us",
          opt (Option.bind v (fun v -> v.Rthv_check.Headroom.hv_headroom_us)) );
      ]
  in
  print_endline
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("scenario", Obs.Json.String scenario);
            ("rows", Obs.Json.List (List.map row_json rows));
          ]))

let report_main flight_dir scenario capacity json =
  Option.iter
    (fun dir -> Rthv_core.Flight_recorder.enable ~dir ())
    flight_dir;
  match Scenarios.find scenario with
  | None ->
      Format.eprintf "rthv_trace report: unknown scenario %S (available: %s)@."
        scenario
        (String.concat ", " (List.map fst Scenarios.all));
      1
  | Some build ->
      let config = build () in
      let registry = Obs.Registry.create () in
      let recorder = Obs.Recorder.create ~registry () in
      let attr = Obs.Attribution.create () in
      let trace = Hyp_trace.create ~capacity () in
      let sim = Hyp_sim.create ~trace config in
      Obs.Sink.with_sink
        (Obs.Sink.tee (Obs.Recorder.sink recorder) (Obs.Attribution.sink attr))
        (fun () -> Hyp_sim.run sim);
      Rthv_check.Headroom.gauges config registry;
      let verdicts = Rthv_check.Headroom.verdicts config registry in
      let verdict_for source cls =
        List.find_opt
          (fun v ->
            v.Rthv_check.Headroom.hv_source = source
            && v.Rthv_check.Headroom.hv_class = cls)
          verdicts
      in
      let rows = Obs.Attribution.rows attr in
      if json then print_report_json scenario rows verdict_for
      else print_report_text scenario rows verdict_for;
      (* Non-negative headroom is the acceptance criterion: a measured
         worst case beyond its analytic bound is an analysis or simulator
         bug, so the report doubles as a check. *)
      let negative =
        List.filter
          (fun v ->
            match v.Rthv_check.Headroom.hv_headroom_us with
            | Some h -> h < 0.
            | None -> false)
          verdicts
      in
      if negative <> [] then begin
        Format.eprintf
          "rthv_trace report: measured worst case exceeds the analytic \
           bound@.";
        (* Post-mortem: dump the scheduling-event ring of the offending run
           so the tail leading up to the excess latency can be replayed
           through --from-jsonl. *)
        let detail =
          String.concat ","
            (List.map
               (fun v ->
                 Printf.sprintf "%s/%s" v.Rthv_check.Headroom.hv_source
                   v.Rthv_check.Headroom.hv_class)
               negative)
        in
        (match
           Rthv_core.Flight_recorder.dump ~reason:"negative_headroom" ~detail
             ()
         with
        | Some path ->
            Format.eprintf "rthv_trace report: flight ring dumped to %s@."
              path
        | None -> ());
        1
      end
      else 0

let report_scenario =
  Arg.(
    value & opt string "quickstart"
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:"Scenario to simulate and attribute.")

let report_json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the report as JSON instead of the text table.")

let report_cmd =
  let doc =
    "simulate a scenario and decompose every IRQ's latency into causal \
     components, comparing measured worst cases against the paper's \
     analytic bounds"
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(
      const report_main $ flight_dir $ report_scenario $ capacity
      $ report_json)

(* --- profile: hierarchical phase profile of a scenario run --------------- *)

type profile_format = P_text | P_json | P_chrome

let profile_main jobs scenario repeat format out =
  Option.iter Rthv_par.Par.set_default_jobs jobs;
  if repeat < 1 then begin
    Format.eprintf "rthv_trace profile: --repeat must be >= 1@.";
    1
  end
  else
    match Scenarios.find scenario with
    | None ->
        Format.eprintf
          "rthv_trace profile: unknown scenario %S (available: %s)@." scenario
          (String.concat ", " (List.map fst Scenarios.all));
        1
    | Some build ->
        let profiler = Obs.Prof.create () in
        (* Every run — including a single one — goes through the sweep
           engine's ?profile plumbing: per-task profiles are absorbed in
           task-index order, so the aggregate is byte-identical for any
           --jobs value. *)
        ignore
          (Rthv_par.Par.init ~profile:profiler repeat (fun _ ->
               Hyp_sim.run (Hyp_sim.create (build ())))
            : unit list);
        write_output ~out (fun () ->
            match format with
            | P_text -> Format.asprintf "%a" Obs.Prof.pp_table profiler
            | P_json ->
                Obs.Json.to_string (Obs.Prof.to_json profiler) ^ "\n"
            | P_chrome ->
                Obs.Json.to_string (Obs.Prof.to_chrome profiler) ^ "\n");
        if out <> "-" then
          Format.printf "wrote phase profile of %d run(s) to %s@." repeat out;
        0

let profile_scenario =
  Arg.(
    value & opt string "quickstart"
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:"Scenario to simulate under the profiler.")

let profile_repeat =
  Arg.(
    value & opt int 1
    & info [ "repeat"; "r" ] ~docv:"N"
        ~doc:
          "Run the scenario N times (sharded across $(b,--jobs) domains) \
           and merge the per-run profiles deterministically.")

let profile_format =
  Arg.(
    value
    & opt
        (enum [ ("text", P_text); ("json", P_json); ("chrome", P_chrome) ])
        P_text
    & info [ "format"; "f" ] ~docv:"FMT"
        ~doc:
          "Profile rendering: $(b,text) (hot-phase table plus allocation \
           waterfall), $(b,json) (rthv-profile/1 document) or $(b,chrome) \
           (Trace Event JSON of the aggregate tree for Perfetto).")

let profile_cmd =
  let doc =
    "simulate a scenario under the hierarchical phase profiler and print \
     where simulated wall-clock and minor-heap allocation went"
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const profile_main $ jobs $ profile_scenario $ profile_repeat
      $ profile_format $ out)

(* --- query: streaming aggregation over a binary trace store -------------- *)

let parse_kinds = function
  | None -> Ok None
  | Some spec ->
      let names =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun n -> n <> "")
      in
      let rec conv acc = function
        | [] -> Ok (Some (List.rev acc))
        | n :: tl -> (
            match Trace_store.kind_of_name n with
            | Some k -> conv (k :: acc) tl
            | None ->
                Error
                  (Printf.sprintf "unknown event kind %S (known: %s)" n
                     (String.concat ", " Trace_store.kind_names)))
      in
      conv [] names

let scenario_config = function
  | None -> Ok None
  | Some name -> (
      match Scenarios.find name with
      | Some build -> Ok (Some (build ()))
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S (available: %s)" name
               (String.concat ", " (List.map fst Scenarios.all))))

let source_of_line config line =
  List.find_opt (fun (s : Config.source) -> s.Config.line = line)
    config.Config.sources

let query_main store agg group_by from_us to_us partition kinds scenario slo
    json =
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
  let result =
    let* kinds = parse_kinds kinds in
    let* config = scenario_config scenario in
    let* () =
      if slo && agg <> Trace_query.Latency then
        Error "--slo needs latency samples; pass --agg latency"
      else if slo && config = None then
        Error "--slo needs the analytic bounds; pass --scenario NAME"
      else Ok ()
    in
    let filter =
      {
        Trace_store.from_time = Option.map Cycles.of_us from_us;
        to_time = Option.map Cycles.of_us to_us;
        kinds;
        partition;
      }
    in
    let line_partition =
      Option.map
        (fun config line ->
          Option.map
            (fun (s : Config.source) -> s.Config.subscriber)
            (source_of_line config line))
        config
    in
    let line_source =
      Option.map
        (fun config line ->
          Option.map
            (fun (s : Config.source) -> s.Config.name)
            (source_of_line config line))
        config
    in
    let slo_t =
      if slo then Option.map (fun config -> Slo.create config) config
      else None
    in
    let on_sample =
      Option.map
        (fun t ~source ~cls ~partition:_ ~latency_us ->
          Slo.observe t ~source ~cls ~latency_us)
        slo_t
    in
    let* q =
      match
        Trace_query.run ?filter:(Some filter) ?line_partition ?line_source
          ?on_sample ~agg ~group_by store
      with
      | q -> Ok q
      | exception Invalid_argument msg -> Error msg
      | exception Obs.Tracestore.Corrupt msg ->
          Error (Printf.sprintf "%s: %s" store msg)
      | exception Sys_error msg -> Error msg
    in
    Ok (q, slo_t)
  in
  match result with
  | Error msg ->
      Format.eprintf "rthv_trace query: %s@." msg;
      1
  | Ok (q, slo_t) -> (
      if json then
        print_endline (Obs.Json.to_string (Trace_query.to_json ~store q))
      else Format.printf "%a@." Trace_query.pp q;
      match slo_t with
      | None -> 0
      | Some t ->
          if json then
            print_endline (Obs.Json.to_string (Slo.to_json t))
          else Format.printf "%a@." Slo.pp t;
          if Slo.ok t then 0
          else begin
            Format.eprintf
              "rthv_trace query: observed latency exceeds an analytic \
               bound@.";
            1
          end)

let query_store =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:"The binary trace store (rthv-tracestore/1) to aggregate.")

let query_agg =
  Arg.(
    value
    & opt
        (enum
           [
             ("count", Trace_query.Count);
             ("rate", Trace_query.Rate);
             ("latency", Trace_query.Latency);
           ])
        Trace_query.Count
    & info [ "agg"; "a" ] ~docv:"AGG"
        ~doc:
          "Aggregation: $(b,count) (matching events), $(b,rate) (events \
           per second of matched span) or $(b,latency) (per-IRQ \
           activation-to-completion percentiles via the shared P2 \
           digests).")

let query_group_by =
  Arg.(
    value
    & opt
        (enum
           [
             ("none", Trace_query.By_none);
             ("partition", Trace_query.By_partition);
             ("kind", Trace_query.By_kind);
             ("class", Trace_query.By_class);
             ("source", Trace_query.By_source);
           ])
        Trace_query.By_none
    & info [ "group-by"; "g" ] ~docv:"KEY"
        ~doc:
          "Group rows by $(b,partition), $(b,kind) (count/rate), \
           $(b,class) or $(b,source) (latency); $(b,none) aggregates \
           everything into one row.")

let query_kinds =
  Arg.(
    value
    & opt (some string) None
    & info [ "kind"; "k" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated event kinds to keep (JSONL $(b,ev) names, e.g. \
           $(b,irq_raised,monitor_decision)); ignored by the latency \
           aggregation, which always scans its classification set.")

let query_scenario =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario the store was recorded from: supplies the line-to-\
           partition and line-to-source maps (names instead of \
           $(b,line<N>)) and, with $(b,--slo), the analytic latency \
           bounds.")

let query_slo =
  Arg.(
    value & flag
    & info [ "slo" ]
        ~doc:
          "Stream every latency sample through the SLO gauges \
           (observed-vs-bound burn, per source x class) and exit non-zero \
           if any sample exceeded its equations-(11)/(12)/(16) bound.  \
           Requires $(b,--agg latency) and $(b,--scenario).")

let query_json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the rthv-query/1 document (and the rthv-slo/1 document \
           under $(b,--slo)) instead of text tables.")

let query_cmd =
  let doc =
    "aggregate a binary trace store in one streaming pass: counts, rates \
     or latency percentiles with block-index pushdown, optionally gated \
     by the analytic latency bounds"
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      const query_main $ query_store $ query_agg $ query_group_by $ from_us
      $ to_us $ partition $ query_kinds $ query_scenario $ query_slo
      $ query_json)

let default_term =
  Term.(
    const main $ jobs $ mode $ flight_dir $ source $ format $ out $ to_store
    $ partition $ from_us $ to_us $ metrics $ capacity)

let cmd =
  let doc =
    "record hypervisor simulation timelines and export them as Chrome \
     Trace JSON, JSONL, VCD or a binary trace store, with a metrics \
     summary and a streaming query engine"
  in
  Cmd.group ~default:default_term
    (Cmd.info "rthv_trace" ~doc)
    [ report_cmd; profile_cmd; query_cmd ]

let () = exit (Cmd.eval' cmd)
