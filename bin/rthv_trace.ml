(* rthv_trace: record or re-export hypervisor timelines and print a
   metrics summary.

   Record a scenario and write a Perfetto-loadable Chrome trace:
     rthv_trace --scenario quickstart --format chrome -o trace.json

   Record to JSONL (one structured event per line), then re-export the
   file without re-simulating:
     rthv_trace -s quickstart --format jsonl -o run.jsonl
     rthv_trace --from-jsonl run.jsonl --format chrome -o trace.json

   Filter to one partition inside a time window:
     rthv_trace -s avionics_ima --partition 2 --from-us 0 --to-us 56000 \
                --format chrome -o p2.json

   The summary is a dump of the lib/obs metrics registry: every simulator
   instrumentation point (latency quantiles, monitor verdicts, stolen time)
   plus per-event-kind trace counts; --metrics selects the rendering. *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Trace_export = Rthv_core.Trace_export
module Vcd_export = Rthv_core.Vcd_export
module Obs = Rthv_obs
module Scenarios = Rthv_check.Scenarios

type source = Scenario of string | From_jsonl of string
type format = Chrome | Jsonl | Vcd
type metrics = M_text | M_json | M_prometheus | M_none

(* --- recording ---------------------------------------------------------- *)

let line_subscribers config =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (s : Config.source) ->
      Hashtbl.replace table s.Config.line s.Config.subscriber)
    config.Config.sources;
  Some table

let record_scenario ~capacity ~registry name =
  match Scenarios.find name with
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (available: %s)" name
           (String.concat ", " (List.map fst Scenarios.all)))
  | Some build ->
      let config = build () in
      let trace = Hyp_trace.create ~capacity () in
      let recorder = Obs.Recorder.create ~registry () in
      let sim = Hyp_sim.create ~trace config in
      Obs.Sink.with_sink (Obs.Recorder.sink recorder) (fun () ->
          Hyp_sim.run sim);
      let names =
        Array.of_list
          (List.map
             (fun (p : Config.partition) -> p.Config.pname)
             config.Config.partitions)
      in
      Ok (Hyp_trace.to_list trace, Some names, line_subscribers config)

(* --- filtering ---------------------------------------------------------- *)

let event_partitions ~lines event =
  let of_line line =
    match lines with
    | Some table -> (
        match Hashtbl.find_opt table line with
        | Some p -> [ p ]
        | None -> [])
    | None -> []
  in
  match event with
  | Hyp_trace.Slot_switch { from_partition; to_partition } ->
      [ from_partition; to_partition ]
  | Hyp_trace.Boundary_deferred { owner; _ } -> [ owner ]
  | Hyp_trace.Interposition_start { target; _ }
  | Hyp_trace.Interposition_end { target; _ }
  | Hyp_trace.Interposition_crossed_boundary { target } ->
      [ target ]
  | Hyp_trace.Bottom_handler_done { partition; _ } -> [ partition ]
  | Hyp_trace.Top_handler_run { line; _ }
  | Hyp_trace.Monitor_decision { line; _ }
  | Hyp_trace.Irq_coalesced { line } ->
      of_line line

let apply_filters ~partition ~from_us ~to_us ~lines entries =
  let from_c = Option.map Cycles.of_us from_us in
  let to_c = Option.map Cycles.of_us to_us in
  List.filter
    (fun e ->
      let time_ok =
        (match from_c with Some f -> e.Hyp_trace.time >= f | None -> true)
        && match to_c with Some u -> e.Hyp_trace.time <= u | None -> true
      in
      let partition_ok =
        match partition with
        | None -> true
        | Some p -> (
            match event_partitions ~lines e.Hyp_trace.event with
            | [] ->
                (* Unattributable (no line map, e.g. re-exported JSONL):
                   keep rather than silently hide hypervisor activity. *)
                true
            | ps -> List.mem p ps)
      in
      time_ok && partition_ok)
    entries

(* --- summary ------------------------------------------------------------ *)

let count_trace_events registry entries =
  List.iter
    (fun e ->
      let kind =
        match e.Hyp_trace.event with
        | Hyp_trace.Slot_switch _ -> "slot_switch"
        | Hyp_trace.Boundary_deferred _ -> "boundary_deferred"
        | Hyp_trace.Top_handler_run _ -> "top_handler"
        | Hyp_trace.Monitor_decision _ -> "monitor_decision"
        | Hyp_trace.Interposition_start _ -> "interposition_start"
        | Hyp_trace.Interposition_end _ -> "interposition_end"
        | Hyp_trace.Interposition_crossed_boundary _ ->
            "interposition_crossed_boundary"
        | Hyp_trace.Bottom_handler_done _ -> "bottom_handler_done"
        | Hyp_trace.Irq_coalesced _ -> "irq_coalesced"
      in
      Obs.Registry.incr registry ~labels:(Obs.Labels.v [ ("ev", kind) ])
        "rthv_trace_events_total" 1)
    entries

let print_summary ppf metrics registry =
  match metrics with
  | M_none -> ()
  | M_text ->
      Format.fprintf ppf "-- metrics (%d series) --@.%a"
        (Obs.Registry.cardinality registry)
        Obs.Registry.pp registry
  | M_json ->
      Format.fprintf ppf "%s@."
        (Obs.Json.to_string (Obs.Registry.to_json registry))
  | M_prometheus ->
      Format.fprintf ppf "%s" (Obs.Registry.to_prometheus registry)

(* --- main --------------------------------------------------------------- *)

let write_output ~out render =
  match out with
  | "-" ->
      print_string (render ());
      flush stdout
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (render ()))

let main jobs source format out partition from_us to_us metrics capacity =
  Option.iter Rthv_par.Par.set_default_jobs jobs;
  let registry = Obs.Registry.create () in
  let recorded =
    match source with
    | Scenario name -> record_scenario ~capacity ~registry name
    | From_jsonl path -> (
        match Trace_export.load_jsonl ~path with
        | Ok entries -> Ok (entries, None, None)
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  match recorded with
  | Error msg ->
      Format.eprintf "rthv_trace: %s@." msg;
      1
  | Ok (entries, partition_names, lines) ->
      let total = List.length entries in
      let entries = apply_filters ~partition ~from_us ~to_us ~lines entries in
      count_trace_events registry entries;
      let trace = Trace_export.trace_of_entries entries in
      (match format with
      | Chrome ->
          write_output ~out (fun () ->
              Trace_export.chrome_string ?partition_names trace ^ "\n")
      | Jsonl -> write_output ~out (fun () -> Trace_export.jsonl_string trace)
      | Vcd -> write_output ~out (fun () -> Vcd_export.to_string trace));
      (* Keep the export stream clean: the summary shares stdout only when
         the export went to a file. *)
      let ppf =
        if out = "-" then Format.err_formatter else Format.std_formatter
      in
      if out <> "-" then
        Format.fprintf ppf "wrote %d event(s) to %s (%d before filtering)@."
          (List.length entries) out total;
      print_summary ppf metrics registry;
      Format.pp_print_flush ppf ();
      0

open Cmdliner

let source =
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:
            "Simulate a named scenario (see $(b,rthv_lint) for the list: \
             quickstart, avionics_ima, automotive_ecu, demo_bad) with a \
             trace attached.")
  in
  let from_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-jsonl" ] ~docv:"FILE"
          ~doc:
            "Re-export a previously recorded JSONL trace instead of \
             simulating.")
  in
  let combine scenario from_jsonl =
    match (scenario, from_jsonl) with
    | Some _, Some _ ->
        `Error (true, "--scenario and --from-jsonl are mutually exclusive")
    | None, Some path -> `Ok (From_jsonl path)
    | Some name, None -> `Ok (Scenario name)
    | None, None -> `Ok (Scenario "quickstart")
  in
  Term.(ret (const combine $ scenario $ from_jsonl))

let format =
  Arg.(
    value
    & opt (enum [ ("chrome", Chrome); ("jsonl", Jsonl); ("vcd", Vcd) ]) Chrome
    & info [ "format"; "f" ] ~docv:"FMT"
        ~doc:
          "Export format: $(b,chrome) (Trace Event JSON for \
           Perfetto/chrome://tracing), $(b,jsonl) (one event per line) or \
           $(b,vcd) (GTKWave waveform).")

let out =
  Arg.(
    value & opt string "-"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Output file; $(b,-) writes the export to stdout (default).")

let partition =
  Arg.(
    value
    & opt (some int) None
    & info [ "partition"; "p" ] ~docv:"IDX"
        ~doc:
          "Keep only events attributable to this partition (slot \
           switches touching it, its interpositions, deferrals and \
           completions, and its sources' IRQ activity).")

let from_us =
  Arg.(
    value
    & opt (some int) None
    & info [ "from-us" ] ~docv:"US" ~doc:"Drop events before this time.")

let to_us =
  Arg.(
    value
    & opt (some int) None
    & info [ "to-us" ] ~docv:"US" ~doc:"Drop events after this time.")

let metrics =
  Arg.(
    value
    & opt
        (enum
           [
             ("text", M_text);
             ("json", M_json);
             ("prometheus", M_prometheus);
             ("none", M_none);
           ])
        M_text
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Metrics summary rendering: $(b,text), $(b,json), \
           $(b,prometheus) or $(b,none).  Printed to stderr when the \
           export goes to stdout.")

let capacity =
  Arg.(
    value
    & opt int Hyp_sim.audit_trace_capacity
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Trace ring-buffer capacity when simulating.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for any sharded sweeps (default: $(b,RTHV_JOBS) \
           or the machine's recommended domain count).  A single scenario \
           recording is one simulation and always runs on one domain; the \
           flag exists for parity with $(b,rthv_sim) and $(b,bench).")

let cmd =
  let doc =
    "record hypervisor simulation timelines and export them as Chrome \
     Trace JSON, JSONL or VCD with a metrics summary"
  in
  Cmd.v
    (Cmd.info "rthv_trace" ~doc)
    Term.(
      const main $ jobs $ source $ format $ out $ partition $ from_us $ to_us
      $ metrics $ capacity)

let () = exit (Cmd.eval' cmd)
